//! Concurrent B+-tree with optimistic lock coupling (paper §6.1).
//!
//! The tree is generic over two lock types:
//!
//! * `IL` — the lock on **inner** nodes. The paper keeps centralized
//!   optimistic locks on inner nodes even in the OptiQL configuration,
//!   because inner nodes see little contention and queue-based release is
//!   more expensive when uncontended (§6.1).
//! * `LL` — the lock on **leaf** nodes, where contention concentrates.
//!
//! and over the key type `K:`[`IndexKey`] (default `u64`, which
//! monomorphizes to the pre-generic fixed-width code; `Bytes` keys live
//! behind owned pointer slots — see `node.rs` for the slot protocol and
//! its ownership rules, which this module's structural-modification and
//! remove paths enforce by retiring every dropped slot through the
//! tree's epoch collector).
//!
//! The write paths dispatch on `LL::STRATEGY`:
//!
//! * [`WriteStrategy::Upgrade`] — classic OLC (Figure 2c): validate the
//!   leaf version, then CAS-upgrade it; restart from the root on failure.
//! * [`WriteStrategy::DirectLock`] — the paper's Algorithm 4: acquire the
//!   leaf lock directly (blocking, FIFO-queued), then validate the parent;
//!   avoids the retry-and-re-search of a failed upgrade.
//! * [`WriteStrategy::DirectLockAor`] — Algorithm 4 plus adjustable
//!   opportunistic read: readers keep being admitted while the writer
//!   locates its target slot (§5.3, §7.4).
//! * [`WriteStrategy::Pessimistic`] — traditional lock coupling: shared
//!   locks on the descent, exclusive at the write target; inserts take
//!   exclusive locks top-down and split eagerly.
//!
//! Structural modifications are eager (BTreeOLC \[29\] style): a full node is
//! split while descending, which guarantees the parent always has room for
//! one more separator. Deletions unlink empty leaves and merge
//! under-quarter-full leaves with their right sibling best-effort (this is
//! the "two queue nodes per thread" case of §6.1); inner nodes shrink only
//! via root collapse.
//!
//! # Range scans
//!
//! [`BPlusTree::fill_from`] is the per-leaf scan primitive: descend to the
//! leaf covering the cursor under optimistic reads, snapshot its matching
//! entries, validate, and report the tightest upper separator on the path
//! as the next cursor. Both the materializing [`scan`](BPlusTree::scan)
//! and the streaming [`range`](BPlusTree::range) iterate it. Continuation
//! is loss- and duplicate-free because a leaf's keys are strictly below
//! the separator above it: restarting the descent at the separator
//! (inclusive) lands on the next leaf's first key, whatever splits or
//! merges happened in between.

use std::ops::Bound;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use optiql::olc::{IndexStats, RestartLoop, SharedIndexStats};
use optiql::stats::Event;
use optiql::{IndexLock, WriteStrategy};
use optiql_index_api::{bounds_nonempty, key_above_start, key_below_end, IndexKey, RangeIter};
use optiql_reclaim::{Collector, Guard};

use crate::node::{as_inner, as_leaf, is_leaf, Inner, Leaf, NodeBase};

/// Internal atomic counters; snapshotted into [`TreeStats`].
#[derive(Default)]
struct StatsInner {
    leaf_splits: AtomicU64,
    inner_splits: AtomicU64,
    root_splits: AtomicU64,
    leaf_merges: AtomicU64,
    leaf_unlinks: AtomicU64,
    root_collapses: AtomicU64,
}

/// Snapshot of a tree's event counters. Counters are updated with relaxed
/// atomics; under concurrency a snapshot is approximate but monotone.
/// Operation/restart accounting is the workspace-wide
/// [`IndexStats`]; the structural (SMO) counters are tree-specific.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Unified operation/restart accounting (`optiql::olc::IndexStats`).
    pub index: IndexStats,
    /// Leaf splits.
    pub leaf_splits: u64,
    /// Inner-node splits.
    pub inner_splits: u64,
    /// Root splits (tree grew one level).
    pub root_splits: u64,
    /// Leaf merges into the right sibling.
    pub leaf_merges: u64,
    /// Empty-leaf unlinks.
    pub leaf_unlinks: u64,
    /// Root collapses (tree shrank one level).
    pub root_collapses: u64,
}

/// Concurrent B+-tree mapping `K` keys to `u64` payloads (the paper's
/// 8-byte-key / 8-byte-value configuration when `K = u64`, the default).
///
/// `IC` is the inner-node child capacity, `LC` the leaf entry capacity; see
/// [`crate::node_size`] for byte-size presets.
pub struct BPlusTree<
    IL: IndexLock,
    LL: IndexLock,
    const IC: usize,
    const LC: usize,
    K: IndexKey = u64,
> {
    pub(crate) root: AtomicPtr<NodeBase>,
    pub(crate) size: AtomicUsize,
    pub(crate) collector: Collector,
    stats: StatsInner,
    pub(crate) index_stats: SharedIndexStats,
    _locks: std::marker::PhantomData<(IL, LL, K)>,
}

unsafe impl<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize, K: IndexKey> Send
    for BPlusTree<IL, LL, IC, LC, K>
{
}
unsafe impl<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize, K: IndexKey> Sync
    for BPlusTree<IL, LL, IC, LC, K>
{
}

impl<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize, K: IndexKey> Default
    for BPlusTree<IL, LL, IC, LC, K>
{
    fn default() -> Self {
        Self::new()
    }
}

impl<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize, K: IndexKey>
    BPlusTree<IL, LL, IC, LC, K>
{
    /// Create an empty tree.
    pub fn new() -> Self {
        assert!(LC >= 2, "leaf capacity must be at least 2");
        assert!(IC >= 4, "inner capacity must be at least 4");
        assert_eq!(
            IL::PESSIMISTIC,
            LL::PESSIMISTIC,
            "inner and leaf locks must agree on coupling style"
        );
        BPlusTree {
            root: AtomicPtr::new(Leaf::<LL, LC, K>::alloc()),
            size: AtomicUsize::new(0),
            collector: Collector::new(),
            stats: StatsInner::default(),
            index_stats: SharedIndexStats::new(),
            _locks: std::marker::PhantomData,
        }
    }

    /// Number of entries (maintained counter; exact when quiescent).
    pub fn len(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }

    /// True iff the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drive deferred node reclamation forward (call from quiescent points;
    /// tests and benchmarks use this between phases).
    pub fn flush_reclamation(&self) {
        self.collector.flush();
    }

    /// A handle to this tree's epoch-reclamation domain. Outer layers pin
    /// it once around an operation group so the per-operation pins inside
    /// become cheap nested increments (see
    /// [`ConcurrentIndex::reclaim_handle`](optiql_index_api::ConcurrentIndex::reclaim_handle)).
    pub fn reclaim_handle(&self) -> Option<optiql_reclaim::Handle> {
        Some(self.collector.handle())
    }

    /// Snapshot the structural-event counters.
    pub fn stats(&self) -> TreeStats {
        TreeStats {
            index: self.index_stats(),
            leaf_splits: self.stats.leaf_splits.load(Ordering::Relaxed),
            inner_splits: self.stats.inner_splits.load(Ordering::Relaxed),
            root_splits: self.stats.root_splits.load(Ordering::Relaxed),
            leaf_merges: self.stats.leaf_merges.load(Ordering::Relaxed),
            leaf_unlinks: self.stats.leaf_unlinks.load(Ordering::Relaxed),
            root_collapses: self.stats.root_collapses.load(Ordering::Relaxed),
        }
    }

    /// Snapshot the unified operation/restart accounting.
    pub fn index_stats(&self) -> IndexStats {
        self.index_stats.snapshot()
    }

    #[inline]
    pub(crate) fn restart_loop(&self) -> RestartLoop<'_> {
        RestartLoop::new(&self.index_stats, Event::IndexRestartBtree)
    }

    #[inline]
    fn count_stat(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    // --- lock-type dispatch on type-erased node pointers -----------------

    #[inline]
    pub(crate) unsafe fn node_r_lock(&self, p: *mut NodeBase) -> Option<u64> {
        unsafe {
            if is_leaf(p) {
                as_leaf::<LL, LC, K>(p).lock.r_lock()
            } else {
                as_inner::<IL, IC, K>(p).lock.r_lock()
            }
        }
    }

    #[inline]
    pub(crate) unsafe fn node_r_unlock(&self, p: *mut NodeBase, v: u64) -> bool {
        unsafe {
            if is_leaf(p) {
                as_leaf::<LL, LC, K>(p).lock.r_unlock(v)
            } else {
                as_inner::<IL, IC, K>(p).lock.r_unlock(v)
            }
        }
    }

    /// Release an abandoned read on a restart path. Free for optimistic
    /// locks; releases the shared lock for pessimistic ones.
    #[inline]
    pub(crate) unsafe fn node_abandon(&self, p: *mut NodeBase, v: u64) {
        if IL::PESSIMISTIC {
            unsafe {
                self.node_r_unlock(p, v);
            }
        }
    }

    /// Read-lock the current root, restarting internally until the locked
    /// node is still the root. Returns `(node, version)`.
    #[inline]
    unsafe fn lock_root_shared(&self, rs: &mut RestartLoop<'_>) -> (*mut NodeBase, u64) {
        loop {
            let node = self.root.load(Ordering::Acquire);
            if let Some(v) = unsafe { self.node_r_lock(node) } {
                if self.root.load(Ordering::Acquire) == node {
                    return (node, v);
                }
                unsafe { self.node_abandon(node, v) };
            }
            rs.pause();
        }
    }

    // --- lookup -----------------------------------------------------------

    /// Point lookup.
    pub fn lookup(&self, key: K) -> Option<u64> {
        self.index_stats.record_op();
        self.lookup_impl(&key)
    }

    /// Lookup body without the per-op accounting: shared by the scalar
    /// entry point and the batched engine's fallback path (which accounts
    /// once per batch).
    pub(crate) fn lookup_impl(&self, key: &K) -> Option<u64> {
        let mut rs = self.restart_loop();
        let _g = self.collector.pin();
        'restart: loop {
            rs.pause();
            let (mut node, mut v) = unsafe { self.lock_root_shared(&mut rs) };
            loop {
                if unsafe { is_leaf(node) } {
                    let leaf = unsafe { as_leaf::<LL, LC, K>(node) };
                    let res = leaf.lookup(key);
                    if !leaf.lock.r_unlock(v) {
                        continue 'restart;
                    }
                    return res;
                }
                let inner = unsafe { as_inner::<IL, IC, K>(node) };
                let child = inner.find_child(key);
                if child.is_null() {
                    unsafe { self.node_abandon(node, v) };
                    continue 'restart;
                }
                if !inner.lock.recheck(v) {
                    continue 'restart;
                }
                let Some(cv) = (unsafe { self.node_r_lock(child) }) else {
                    unsafe { self.node_abandon(node, v) };
                    continue 'restart;
                };
                if !inner.lock.r_unlock(v) {
                    unsafe { self.node_abandon(child, cv) };
                    continue 'restart;
                }
                node = child;
                v = cv;
            }
        }
    }

    // --- update (paper Algorithm 4) ----------------------------------------

    /// Replace the value of an existing key; returns the previous value or
    /// `None` if the key is absent.
    pub fn update(&self, key: K, val: u64) -> Option<u64> {
        self.write_existing(&key, Some(val))
    }

    /// Remove a key; returns the removed value.
    pub fn remove(&self, key: K) -> Option<u64> {
        let old = self.write_existing(&key, None);
        if old.is_some() {
            self.size.fetch_sub(1, Ordering::Relaxed);
        }
        old
    }

    /// Shared descent for update (`val = Some`) and remove (`val = None`).
    fn write_existing(&self, key: &K, val: Option<u64>) -> Option<u64> {
        self.index_stats.record_op();
        let mut rs = self.restart_loop();
        let g = self.collector.pin();
        'restart: loop {
            rs.pause();
            let (mut node, mut v) = unsafe { self.lock_root_shared(&mut rs) };

            // Root is a leaf: lock it directly, re-verifying root identity.
            if unsafe { is_leaf(node) } {
                let leaf = unsafe { as_leaf::<LL, LC, K>(node) };
                match LL::STRATEGY {
                    WriteStrategy::Upgrade => {
                        let Some(t) = leaf.lock.try_upgrade(v) else {
                            continue 'restart;
                        };
                        // Upgrade success ⇒ unchanged since `v` ⇒ still root.
                        let old = apply_leaf(leaf, key, val, &g);
                        leaf.lock.x_unlock(t);
                        return old;
                    }
                    WriteStrategy::DirectLock | WriteStrategy::DirectLockAor => {
                        let t = leaf.lock.x_lock_adjustable();
                        if self.root.load(Ordering::Acquire) != node {
                            leaf.lock.x_unlock(t);
                            continue 'restart;
                        }
                        leaf.lock.x_finish_adjustable(t);
                        let old = apply_leaf(leaf, key, val, &g);
                        leaf.lock.x_unlock(t);
                        return old;
                    }
                    WriteStrategy::Pessimistic => {
                        // Trade the shared lock for an exclusive one.
                        leaf.lock.r_unlock(v);
                        let t = leaf.lock.x_lock();
                        if self.root.load(Ordering::Acquire) != node {
                            leaf.lock.x_unlock(t);
                            continue 'restart;
                        }
                        let old = apply_leaf(leaf, key, val, &g);
                        leaf.lock.x_unlock(t);
                        return old;
                    }
                }
            }

            // Drill down until the child is a leaf (Alg 4 lines 9-26).
            loop {
                let inner = unsafe { as_inner::<IL, IC, K>(node) };
                let child = inner.find_child(key);
                if child.is_null() {
                    unsafe { self.node_abandon(node, v) };
                    continue 'restart;
                }
                if !inner.lock.recheck(v) {
                    continue 'restart;
                }
                if unsafe { is_leaf(child) } {
                    let leaf = unsafe { as_leaf::<LL, LC, K>(child) };
                    let (token, searched) = match LL::STRATEGY {
                        WriteStrategy::Upgrade => {
                            // Original OLC: read leaf version, validate
                            // parent, search optimistically, then upgrade.
                            let Some(lv) = leaf.lock.r_lock() else {
                                continue 'restart;
                            };
                            if !inner.lock.r_unlock(v) {
                                continue 'restart;
                            }
                            let idx = leaf.search(key);
                            let Some(t) = leaf.lock.try_upgrade(lv) else {
                                continue 'restart;
                            };
                            (t, Some(idx))
                        }
                        WriteStrategy::DirectLock => {
                            // Alg 4: lock the leaf directly, then validate
                            // the parent (its release_sh is pure validation).
                            let t = leaf.lock.x_lock();
                            if !inner.lock.recheck(v) {
                                leaf.lock.x_unlock(t);
                                continue 'restart;
                            }
                            (t, None)
                        }
                        WriteStrategy::DirectLockAor => {
                            // Keep admitting readers while we search.
                            let t = leaf.lock.x_lock_adjustable();
                            if !inner.lock.recheck(v) {
                                leaf.lock.x_unlock(t);
                                continue 'restart;
                            }
                            let idx = leaf.search(key);
                            leaf.lock.x_finish_adjustable(t);
                            (t, Some(idx))
                        }
                        WriteStrategy::Pessimistic => {
                            // We hold the parent shared: the leaf cannot
                            // change identity. Couple: leaf X, release parent.
                            let t = leaf.lock.x_lock();
                            inner.lock.r_unlock(v);
                            (t, None)
                        }
                    };

                    let old = match searched {
                        Some(idx) => apply_leaf_at(leaf, idx, key, val, &g),
                        None => apply_leaf(leaf, key, val, &g),
                    };

                    // Deletion SMOs: unlink an emptied leaf / merge an
                    // under-quarter leaf into its right sibling.
                    if val.is_none() && old.is_some() && !LL::PESSIMISTIC {
                        self.try_shrink(inner, v, child, leaf, &g);
                    }
                    leaf.lock.x_unlock(token);
                    return old;
                }
                // Child is an inner node: couple downwards.
                let ci = unsafe { as_inner::<IL, IC, K>(child) };
                let Some(cv) = ci.lock.r_lock() else {
                    unsafe { self.node_abandon(node, v) };
                    continue 'restart;
                };
                if !inner.lock.r_unlock(v) {
                    unsafe { self.node_abandon(child, cv) };
                    continue 'restart;
                }
                node = child;
                v = cv;
            }
        }
    }

    /// Best-effort structural shrinking after a delete. Caller holds the
    /// leaf exclusively; `pv` is the optimistic parent version observed
    /// when the leaf was located.
    fn try_shrink(
        &self,
        parent: &Inner<IL, IC, K>,
        pv: u64,
        leaf_ptr: *mut NodeBase,
        leaf: &Leaf<LL, LC, K>,
        g: &Guard,
    ) {
        let n = leaf.count();
        if n >= LC / 4 && n != 0 {
            return;
        }
        // Exclusive on the parent via upgrade; abandoning on failure keeps
        // the delete itself correct (the shrink is opportunistic).
        let Some(pt) = parent.lock.try_upgrade(pv) else {
            return;
        };
        let Some(idx) = parent.position_of(leaf_ptr) else {
            parent.lock.x_unlock(pt);
            return;
        };
        if n == 0 && parent.count() >= 1 {
            // Unlink the empty leaf entirely. The dropped separator's key
            // slot is retired: concurrent readers may still compare
            // against it until the epoch turns.
            self.count_stat(&self.stats.leaf_unlinks);
            let sep = parent.remove_child(idx);
            unsafe {
                K::slot_retire(sep, g);
                g.retire_ptr(leaf_ptr as *mut Leaf<LL, LC, K>);
            }
            // The caller still unlocks through its token; the node stays
            // alive until the epoch advances past every reader & the holder.
            parent.lock.x_unlock(pt);
            return;
        }
        if idx < parent.count() {
            // Merge with the right sibling if the union fits.
            let sib_ptr = parent.child(idx + 1);
            debug_assert!(unsafe { is_leaf(sib_ptr) });
            let sib = unsafe { as_leaf::<LL, LC, K>(sib_ptr) };
            let st = sib.lock.x_lock();
            if leaf.count() + sib.count() <= LC {
                self.count_stat(&self.stats.leaf_merges);
                // `absorb` moves (or, under prefix truncation, re-expresses
                // and retires) the sibling's key slots, so retiring the
                // sibling node never touches live slots; the dropped
                // separator is released here.
                leaf.absorb(sib, g);
                let sep = parent.remove_child(idx + 1);
                sib.lock.x_unlock(st);
                unsafe {
                    K::slot_retire(sep, g);
                    g.retire_ptr(sib_ptr as *mut Leaf<LL, LC, K>);
                }
            } else {
                sib.lock.x_unlock(st);
            }
        }
        parent.lock.x_unlock(pt);
        self.maybe_collapse_root(g);
    }

    /// Replace an inner root that has no separator left with its only child.
    fn maybe_collapse_root(&self, g: &Guard) {
        let root = self.root.load(Ordering::Acquire);
        if unsafe { is_leaf(root) } {
            return;
        }
        let inner = unsafe { as_inner::<IL, IC, K>(root) };
        let Some(v) = inner.lock.r_lock() else { return };
        if self.root.load(Ordering::Acquire) != root || inner.count() != 0 {
            return;
        }
        let Some(t) = inner.lock.try_upgrade(v) else {
            return;
        };
        if self.root.load(Ordering::Acquire) == root {
            self.count_stat(&self.stats.root_collapses);
            let child = inner.child(0);
            self.root.store(child, Ordering::Release);
            inner.lock.x_unlock(t);
            // A collapsing root has count 0: no separator slots to free.
            unsafe { g.retire_ptr(root as *mut Inner<IL, IC, K>) };
        } else {
            inner.lock.x_unlock(t);
        }
    }

    // --- insert -------------------------------------------------------------

    /// Insert or overwrite; returns the previous value if the key existed.
    pub fn insert(&self, key: K, val: u64) -> Option<u64> {
        self.index_stats.record_op();
        let old = if LL::PESSIMISTIC {
            self.insert_pessimistic(&key, val)
        } else {
            self.insert_optimistic(&key, val)
        };
        if old.is_none() {
            self.size.fetch_add(1, Ordering::Relaxed);
        }
        old
    }

    pub(crate) fn insert_optimistic(&self, key: &K, val: u64) -> Option<u64> {
        let mut rs = self.restart_loop();
        let g = self.collector.pin();
        'restart: loop {
            rs.pause();
            let (mut node, mut v) = unsafe { self.lock_root_shared(&mut rs) };
            let mut parent: Option<(*mut NodeBase, u64)> = None;

            loop {
                if unsafe { is_leaf(node) } {
                    // Only reachable when the root itself is a leaf.
                    debug_assert!(parent.is_none());
                    let leaf = unsafe { as_leaf::<LL, LC, K>(node) };
                    let Some(t) = leaf.lock.try_upgrade(v) else {
                        continue 'restart;
                    };
                    // Upgrade ⇒ unchanged ⇒ still root.
                    if leaf.is_full() {
                        self.count_stat(&self.stats.root_splits);
                        let (sep, right) = leaf.split(&g);
                        let go_right = *key >= sep;
                        let new_root = Inner::<IL, IC, K>::alloc();
                        unsafe { as_inner::<IL, IC, K>(new_root) }.init_root(sep, node, right);
                        // Insert into the proper half before publishing.
                        let old = if go_right {
                            unsafe { as_leaf::<LL, LC, K>(right) }.insert(key, val, &g)
                        } else {
                            leaf.insert(key, val, &g)
                        };
                        self.root.store(new_root, Ordering::Release);
                        leaf.lock.x_unlock(t);
                        return old;
                    }
                    let old = leaf.insert(key, val, &g);
                    leaf.lock.x_unlock(t);
                    return old;
                }

                let inner = unsafe { as_inner::<IL, IC, K>(node) };
                if inner.is_full() {
                    // Eager split (BTreeOLC): lock parent then node.
                    match parent {
                        Some((p, pv)) => {
                            let pi = unsafe { as_inner::<IL, IC, K>(p) };
                            let Some(pt) = pi.lock.try_upgrade(pv) else {
                                continue 'restart;
                            };
                            let Some(nt) = inner.lock.try_upgrade(v) else {
                                pi.lock.x_unlock(pt);
                                continue 'restart;
                            };
                            self.count_stat(&self.stats.inner_splits);
                            let (sep, right) = inner.split(&g);
                            pi.insert_child(&sep, right, &g);
                            inner.lock.x_unlock(nt);
                            pi.lock.x_unlock(pt);
                        }
                        None => {
                            let Some(nt) = inner.lock.try_upgrade(v) else {
                                continue 'restart;
                            };
                            // Upgrade ⇒ still root (root replacement bumps
                            // the old root's version first).
                            self.count_stat(&self.stats.root_splits);
                            let (sep, right) = inner.split(&g);
                            let new_root = Inner::<IL, IC, K>::alloc();
                            unsafe { as_inner::<IL, IC, K>(new_root) }.init_root(sep, node, right);
                            self.root.store(new_root, Ordering::Release);
                            inner.lock.x_unlock(nt);
                        }
                    }
                    continue 'restart;
                }

                // Release the grandparent before descending further.
                if let Some((p, pv)) = parent.take() {
                    let pi = unsafe { as_inner::<IL, IC, K>(p) };
                    if !pi.lock.r_unlock(pv) {
                        continue 'restart;
                    }
                }

                let child = inner.find_child(key);
                if child.is_null() {
                    continue 'restart;
                }
                if !inner.lock.recheck(v) {
                    continue 'restart;
                }

                if unsafe { is_leaf(child) } {
                    let leaf = unsafe { as_leaf::<LL, LC, K>(child) };
                    match LL::STRATEGY {
                        WriteStrategy::Upgrade => {
                            let Some(lv) = leaf.lock.r_lock() else {
                                continue 'restart;
                            };
                            if leaf.is_full() {
                                // Split: parent then leaf.
                                let Some(pt) = inner.lock.try_upgrade(v) else {
                                    continue 'restart;
                                };
                                let Some(lt) = leaf.lock.try_upgrade(lv) else {
                                    inner.lock.x_unlock(pt);
                                    continue 'restart;
                                };
                                self.count_stat(&self.stats.leaf_splits);
                                let (sep, right) = leaf.split(&g);
                                let go_right = *key >= sep;
                                inner.insert_child(&sep, right, &g);
                                let old = if go_right {
                                    unsafe { as_leaf::<LL, LC, K>(right) }.insert(key, val, &g)
                                } else {
                                    leaf.insert(key, val, &g)
                                };
                                leaf.lock.x_unlock(lt);
                                inner.lock.x_unlock(pt);
                                return old;
                            }
                            if !inner.lock.r_unlock(v) {
                                continue 'restart;
                            }
                            let Some(lt) = leaf.lock.try_upgrade(lv) else {
                                continue 'restart;
                            };
                            let old = leaf.insert(key, val, &g);
                            leaf.lock.x_unlock(lt);
                            return old;
                        }
                        WriteStrategy::DirectLock | WriteStrategy::DirectLockAor => {
                            // Alg 4 adapted for inserts: lock the leaf
                            // directly, validate the parent, split in place
                            // if needed (parent upgrade subsumes recheck).
                            let lt = leaf.lock.x_lock_adjustable();
                            if !inner.lock.recheck(v) {
                                leaf.lock.x_unlock(lt);
                                continue 'restart;
                            }
                            if leaf.is_full() {
                                let Some(pt) = inner.lock.try_upgrade(v) else {
                                    leaf.lock.x_unlock(lt);
                                    continue 'restart;
                                };
                                leaf.lock.x_finish_adjustable(lt);
                                self.count_stat(&self.stats.leaf_splits);
                                let (sep, right) = leaf.split(&g);
                                let go_right = *key >= sep;
                                inner.insert_child(&sep, right, &g);
                                let old = if go_right {
                                    unsafe { as_leaf::<LL, LC, K>(right) }.insert(key, val, &g)
                                } else {
                                    leaf.insert(key, val, &g)
                                };
                                leaf.lock.x_unlock(lt);
                                inner.lock.x_unlock(pt);
                                return old;
                            }
                            leaf.lock.x_finish_adjustable(lt);
                            let old = leaf.insert(key, val, &g);
                            leaf.lock.x_unlock(lt);
                            return old;
                        }
                        WriteStrategy::Pessimistic => unreachable!("dispatched earlier"),
                    }
                }

                // Child is inner: continue coupling.
                let ci = unsafe { as_inner::<IL, IC, K>(child) };
                let Some(cv) = ci.lock.r_lock() else {
                    continue 'restart;
                };
                parent = Some((node, v));
                node = child;
                v = cv;
            }
        }
    }

    fn insert_pessimistic(&self, key: &K, val: u64) -> Option<u64> {
        let mut rs = self.restart_loop();
        let g = self.collector.pin();
        'restart: loop {
            rs.pause();
            // Lock the root exclusively (type-dispatched), re-verifying.
            let node = self.root.load(Ordering::Acquire);
            if unsafe { is_leaf(node) } {
                let leaf = unsafe { as_leaf::<LL, LC, K>(node) };
                let t = leaf.lock.x_lock();
                if self.root.load(Ordering::Acquire) != node {
                    leaf.lock.x_unlock(t);
                    continue 'restart;
                }
                if leaf.is_full() {
                    self.count_stat(&self.stats.root_splits);
                    let (sep, right) = leaf.split(&g);
                    let go_right = *key >= sep;
                    let new_root = Inner::<IL, IC, K>::alloc();
                    unsafe { as_inner::<IL, IC, K>(new_root) }.init_root(sep, node, right);
                    let old = if go_right {
                        unsafe { as_leaf::<LL, LC, K>(right) }.insert(key, val, &g)
                    } else {
                        leaf.insert(key, val, &g)
                    };
                    self.root.store(new_root, Ordering::Release);
                    leaf.lock.x_unlock(t);
                    return old;
                }
                let old = leaf.insert(key, val, &g);
                leaf.lock.x_unlock(t);
                return old;
            }

            let inner = unsafe { as_inner::<IL, IC, K>(node) };
            let t = inner.lock.x_lock();
            if self.root.load(Ordering::Acquire) != node {
                inner.lock.x_unlock(t);
                continue 'restart;
            }
            if inner.is_full() {
                self.count_stat(&self.stats.root_splits);
                let (sep, right) = inner.split(&g);
                let new_root = Inner::<IL, IC, K>::alloc();
                unsafe { as_inner::<IL, IC, K>(new_root) }.init_root(sep, node, right);
                self.root.store(new_root, Ordering::Release);
                inner.lock.x_unlock(t);
                continue 'restart;
            }

            // X-couple down; the parent is released once the child is safe
            // (i.e. not full).
            let mut parent = inner;
            let mut ptoken = t;
            loop {
                let mut child = parent.find_child(key);
                debug_assert!(!child.is_null());
                if unsafe { is_leaf(child) } {
                    let mut leaf = unsafe { as_leaf::<LL, LC, K>(child) };
                    let mut lt = leaf.lock.x_lock();
                    if leaf.is_full() {
                        self.count_stat(&self.stats.leaf_splits);
                        let (sep, right) = leaf.split(&g);
                        let go_right = *key >= sep;
                        parent.insert_child(&sep, right, &g);
                        if go_right {
                            let rl = unsafe { as_leaf::<LL, LC, K>(right) };
                            let rt = rl.lock.x_lock();
                            leaf.lock.x_unlock(lt);
                            leaf = rl;
                            lt = rt;
                        }
                        parent.lock.x_unlock(ptoken);
                        let old = leaf.insert(key, val, &g);
                        leaf.lock.x_unlock(lt);
                        return old;
                    }
                    parent.lock.x_unlock(ptoken);
                    let old = leaf.insert(key, val, &g);
                    leaf.lock.x_unlock(lt);
                    return old;
                }

                let mut ci = unsafe { as_inner::<IL, IC, K>(child) };
                let mut ct = ci.lock.x_lock();
                if ci.is_full() {
                    self.count_stat(&self.stats.inner_splits);
                    let (sep, right) = ci.split(&g);
                    let go_right = *key >= sep;
                    parent.insert_child(&sep, right, &g);
                    if go_right {
                        let ri = unsafe { as_inner::<IL, IC, K>(right) };
                        let rt = ri.lock.x_lock();
                        ci.lock.x_unlock(ct);
                        ci = ri;
                        ct = rt;
                        child = right;
                    }
                }
                let _ = child;
                parent.lock.x_unlock(ptoken);
                parent = ci;
                ptoken = ct;
            }
        }
    }

    // --- range scan -----------------------------------------------------------

    /// One streaming-scan step: snapshot the entries of the leaf covering
    /// `from` (keys ≥ `from`; the leftmost leaf when `None`) into `out`
    /// under a validated optimistic read, and return the tightest upper
    /// separator on the descent path — the inclusive cursor for the next
    /// step, `None` at the rightmost leaf. `out` is cleared on entry and
    /// on every internal restart, so a validation failure never leaks a
    /// torn snapshot.
    pub(crate) fn fill_from(
        &self,
        from: Option<&K>,
        limit: usize,
        out: &mut Vec<(K, u64)>,
    ) -> Option<K> {
        let _g = self.collector.pin();
        // Fresh ladder per leaf: a restart storm on one leaf must not
        // leave the loop escalated for the rest of the range.
        let mut rs = self.restart_loop();
        'restart: loop {
            rs.pause();
            out.clear();
            let (mut node, mut v) = unsafe { self.lock_root_shared(&mut rs) };
            let mut upper: Option<K> = None;
            loop {
                if unsafe { is_leaf(node) } {
                    let leaf = unsafe { as_leaf::<LL, LC, K>(node) };
                    leaf.collect_from(from, limit, out);
                    if !leaf.lock.r_unlock(v) {
                        continue 'restart;
                    }
                    // `upper` is an owned reconstruction of the tightest
                    // separator, captured only after its node revalidated.
                    return upper;
                }
                let inner = unsafe { as_inner::<IL, IC, K>(node) };
                let (child, up) = inner.find_child_from(from);
                if child.is_null() {
                    unsafe { self.node_abandon(node, v) };
                    continue 'restart;
                }
                if !inner.lock.recheck(v) {
                    continue 'restart;
                }
                if let Some(u) = up {
                    upper = Some(u);
                }
                let Some(cv) = (unsafe { self.node_r_lock(child) }) else {
                    unsafe { self.node_abandon(node, v) };
                    continue 'restart;
                };
                if !inner.lock.r_unlock(v) {
                    unsafe { self.node_abandon(child, cv) };
                    continue 'restart;
                }
                node = child;
                v = cv;
            }
        }
    }

    /// Collect up to `limit` entries with keys ≥ `start`, in ascending key
    /// order (the materializing scan behind `scan_count`).
    pub fn scan(&self, start: K, limit: usize) -> Vec<(K, u64)> {
        self.index_stats.record_op();
        let mut out = Vec::with_capacity(limit.min(1024));
        let mut batch = Vec::new();
        let mut from = start;
        let _g = self.collector.pin();
        while out.len() < limit {
            let upper = self.fill_from(Some(&from), limit - out.len(), &mut batch);
            out.append(&mut batch);
            match upper {
                Some(u) => from = u,
                None => break,
            }
        }
        out
    }

    /// Stream the entries within `start..end` in ascending key order, one
    /// leaf snapshot at a time (see the module doc for the protocol and
    /// the consistency contract).
    pub fn range(&self, start: Bound<K>, end: Bound<K>) -> RangeIter<'_, K> {
        self.index_stats.record_op();
        if !bounds_nonempty(&start, &end) {
            return RangeIter::empty();
        }
        let cursor = match &start {
            Bound::Included(s) | Bound::Excluded(s) => Some(s.clone()),
            Bound::Unbounded => None,
        };
        RangeIter::new(TreeRange {
            tree: self,
            pending: Some(cursor),
            buf: Vec::new().into_iter(),
            start,
            end,
        })
    }

    // --- validation (test support) ---------------------------------------------

    /// Walk the tree single-threadedly and assert every structural
    /// invariant; returns the entry count. Panics on violation.
    pub fn check_invariants(&self) -> usize {
        // Keys are reconstructed through the node's own prefix (identity
        // under `!K::TRUNCATE`): the walk is single-threaded, so every
        // slot and prefix it sees is live and coherent.
        fn walk<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize, K: IndexKey>(
            p: *mut NodeBase,
            lo: Option<&K>,
            hi: Option<&K>,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> usize {
            unsafe {
                if is_leaf(p) {
                    match leaf_depth {
                        Some(d) => assert_eq!(*d, depth, "leaves at unequal depth"),
                        None => *leaf_depth = Some(depth),
                    }
                    let l = as_leaf::<LL, LC, K>(p);
                    let n = l.count();
                    let mut prev: Option<K> = None;
                    for i in 0..n {
                        let k = l.key_at(i);
                        if let Some(prev) = &prev {
                            assert!(*prev < k, "leaf keys out of order");
                        }
                        if let Some(lo) = lo {
                            assert!(k >= *lo, "leaf key below lower fence");
                        }
                        if let Some(hi) = hi {
                            assert!(k < *hi, "leaf key above upper fence");
                        }
                        prev = Some(k);
                    }
                    n
                } else {
                    let node = as_inner::<IL, IC, K>(p);
                    let n = node.count();
                    let mut total = 0;
                    let seps: Vec<K> = (0..n).map(|i| node.sep_key_at(i)).collect();
                    for (i, k) in seps.iter().enumerate() {
                        if i > 0 {
                            assert!(seps[i - 1] < *k, "separators out of order");
                        }
                        if let Some(lo) = lo {
                            assert!(k >= lo, "separator below lower fence");
                        }
                        if let Some(hi) = hi {
                            assert!(k < hi, "separator above upper fence");
                        }
                    }
                    for i in 0..=n {
                        let c_lo = if i == 0 { lo } else { Some(&seps[i - 1]) };
                        let c_hi = if i == n { hi } else { Some(&seps[i]) };
                        let child = node.child(i);
                        assert!(!child.is_null(), "null child in inner node");
                        total +=
                            walk::<IL, LL, IC, LC, K>(child, c_lo, c_hi, depth + 1, leaf_depth);
                    }
                    total
                }
            }
        }
        let mut leaf_depth = None;
        walk::<IL, LL, IC, LC, K>(
            self.root.load(Ordering::Acquire),
            None,
            None,
            0,
            &mut leaf_depth,
        )
    }
}

/// The streaming iterator behind [`BPlusTree::range`]: drains one leaf
/// snapshot, then re-descends from the remembered separator. Bound checks
/// run on every yielded key (keys ascend, so a failed end-bound check
/// terminates the whole scan), and the refill stops early once the next
/// cursor already lies past the end bound.
struct TreeRange<'a, IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize, K: IndexKey> {
    tree: &'a BPlusTree<IL, LL, IC, LC, K>,
    /// `None` — exhausted; `Some(cursor)` — next refill starts at `cursor`
    /// (inclusive), with `Some(None)` meaning the leftmost leaf.
    pending: Option<Option<K>>,
    buf: std::vec::IntoIter<(K, u64)>,
    start: Bound<K>,
    end: Bound<K>,
}

impl<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize, K: IndexKey> Iterator
    for TreeRange<'_, IL, LL, IC, LC, K>
{
    type Item = (K, u64);

    fn next(&mut self) -> Option<(K, u64)> {
        loop {
            for (k, v) in self.buf.by_ref() {
                if !key_above_start(&k, &self.start) {
                    // Only the excluded start key itself lands here.
                    continue;
                }
                if !key_below_end(&k, &self.end) {
                    self.pending = None;
                    self.buf = Vec::new().into_iter();
                    return None;
                }
                return Some((k, v));
            }
            let from = self.pending.take()?;
            let mut batch = Vec::new();
            let upper = self.tree.fill_from(from.as_ref(), usize::MAX, &mut batch);
            // Keys in later leaves are ≥ the separator: once it passes the
            // end bound, nothing further can qualify.
            self.pending = upper.filter(|u| key_below_end(u, &self.end)).map(Some);
            self.buf = batch.into_iter();
        }
    }
}

/// Apply an update (`Some(val)`) or removal (`None`) to a locked leaf. A
/// removal's key slot is retired through `g`.
#[inline]
fn apply_leaf<LL: IndexLock, const LC: usize, K: IndexKey>(
    leaf: &Leaf<LL, LC, K>,
    key: &K,
    val: Option<u64>,
    g: &Guard,
) -> Option<u64> {
    match val {
        Some(v) => leaf.update(key, v),
        None => leaf.remove(key).map(|(slot, old)| {
            // Safety: the slot was just unlinked under the leaf's
            // exclusive lock; pinned readers may still compare against it.
            unsafe { K::slot_retire(slot, g) };
            old
        }),
    }
}

/// As [`apply_leaf`], but with a pre-computed search result (the slot was
/// located while readers were still admitted — Upgrade / AOR paths).
#[inline]
fn apply_leaf_at<LL: IndexLock, const LC: usize, K: IndexKey>(
    leaf: &Leaf<LL, LC, K>,
    idx: Option<usize>,
    key: &K,
    val: Option<u64>,
    g: &Guard,
) -> Option<u64> {
    match idx {
        None => None,
        Some(_) => apply_leaf(leaf, key, val, g),
    }
}

impl<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize, K: IndexKey> Drop
    for BPlusTree<IL, LL, IC, LC, K>
{
    fn drop(&mut self) {
        fn free<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize, K: IndexKey>(
            p: *mut NodeBase,
        ) {
            unsafe {
                if is_leaf(p) {
                    as_leaf::<LL, LC, K>(p).free_key_slots();
                    drop(Box::from_raw(p as *mut Leaf<LL, LC, K>));
                } else {
                    let inner = as_inner::<IL, IC, K>(p);
                    let n = inner.count();
                    for i in 0..=n {
                        free::<IL, LL, IC, LC, K>(inner.child(i));
                    }
                    inner.free_key_slots();
                    drop(Box::from_raw(p as *mut Inner<IL, IC, K>));
                }
            }
        }
        free::<IL, LL, IC, LC, K>(self.root.load(Ordering::Acquire));
        self.collector.flush();
    }
}
