//! Concurrent B+-tree with optimistic lock coupling (paper §6.1).
//!
//! The tree is generic over two lock types:
//!
//! * `IL` — the lock on **inner** nodes. The paper keeps centralized
//!   optimistic locks on inner nodes even in the OptiQL configuration,
//!   because inner nodes see little contention and queue-based release is
//!   more expensive when uncontended (§6.1).
//! * `LL` — the lock on **leaf** nodes, where contention concentrates.
//!
//! The write paths dispatch on `LL::STRATEGY`:
//!
//! * [`WriteStrategy::Upgrade`] — classic OLC (Figure 2c): validate the
//!   leaf version, then CAS-upgrade it; restart from the root on failure.
//! * [`WriteStrategy::DirectLock`] — the paper's Algorithm 4: acquire the
//!   leaf lock directly (blocking, FIFO-queued), then validate the parent;
//!   avoids the retry-and-re-search of a failed upgrade.
//! * [`WriteStrategy::DirectLockAor`] — Algorithm 4 plus adjustable
//!   opportunistic read: readers keep being admitted while the writer
//!   locates its target slot (§5.3, §7.4).
//! * [`WriteStrategy::Pessimistic`] — traditional lock coupling: shared
//!   locks on the descent, exclusive at the write target; inserts take
//!   exclusive locks top-down and split eagerly.
//!
//! Structural modifications are eager (BTreeOLC \[29\] style): a full node is
//! split while descending, which guarantees the parent always has room for
//! one more separator. Deletions unlink empty leaves and merge
//! under-quarter-full leaves with their right sibling best-effort (this is
//! the "two queue nodes per thread" case of §6.1); inner nodes shrink only
//! via root collapse.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use optiql::olc::{IndexStats, RestartLoop, SharedIndexStats};
use optiql::stats::Event;
use optiql::{IndexLock, WriteStrategy};
use optiql_reclaim::{Collector, Guard};

use crate::node::{as_inner, as_leaf, is_leaf, Inner, Leaf, NodeBase};

/// Internal atomic counters; snapshotted into [`TreeStats`].
#[derive(Default)]
struct StatsInner {
    leaf_splits: AtomicU64,
    inner_splits: AtomicU64,
    root_splits: AtomicU64,
    leaf_merges: AtomicU64,
    leaf_unlinks: AtomicU64,
    root_collapses: AtomicU64,
}

/// Snapshot of a tree's event counters. Counters are updated with relaxed
/// atomics; under concurrency a snapshot is approximate but monotone.
/// Operation/restart accounting is the workspace-wide
/// [`IndexStats`]; the structural (SMO) counters are tree-specific.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Unified operation/restart accounting (`optiql::olc::IndexStats`).
    pub index: IndexStats,
    /// Leaf splits.
    pub leaf_splits: u64,
    /// Inner-node splits.
    pub inner_splits: u64,
    /// Root splits (tree grew one level).
    pub root_splits: u64,
    /// Leaf merges into the right sibling.
    pub leaf_merges: u64,
    /// Empty-leaf unlinks.
    pub leaf_unlinks: u64,
    /// Root collapses (tree shrank one level).
    pub root_collapses: u64,
}

/// Concurrent B+-tree keyed by `u64` with `u64` payloads (the paper's
/// 8-byte-key / 8-byte-value configuration).
///
/// `IC` is the inner-node child capacity, `LC` the leaf entry capacity; see
/// [`crate::node_size`] for byte-size presets.
pub struct BPlusTree<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize> {
    pub(crate) root: AtomicPtr<NodeBase>,
    pub(crate) size: AtomicUsize,
    pub(crate) collector: Collector,
    stats: StatsInner,
    pub(crate) index_stats: SharedIndexStats,
    _locks: std::marker::PhantomData<(IL, LL)>,
}

unsafe impl<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize> Send
    for BPlusTree<IL, LL, IC, LC>
{
}
unsafe impl<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize> Sync
    for BPlusTree<IL, LL, IC, LC>
{
}

impl<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize> Default
    for BPlusTree<IL, LL, IC, LC>
{
    fn default() -> Self {
        Self::new()
    }
}

impl<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize> BPlusTree<IL, LL, IC, LC> {
    /// Create an empty tree.
    pub fn new() -> Self {
        assert!(LC >= 2, "leaf capacity must be at least 2");
        assert!(IC >= 4, "inner capacity must be at least 4");
        assert_eq!(
            IL::PESSIMISTIC,
            LL::PESSIMISTIC,
            "inner and leaf locks must agree on coupling style"
        );
        BPlusTree {
            root: AtomicPtr::new(Leaf::<LL, LC>::alloc()),
            size: AtomicUsize::new(0),
            collector: Collector::new(),
            stats: StatsInner::default(),
            index_stats: SharedIndexStats::new(),
            _locks: std::marker::PhantomData,
        }
    }

    /// Number of entries (maintained counter; exact when quiescent).
    pub fn len(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }

    /// True iff the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drive deferred node reclamation forward (call from quiescent points;
    /// tests and benchmarks use this between phases).
    pub fn flush_reclamation(&self) {
        self.collector.flush();
    }

    /// A handle to this tree's epoch-reclamation domain. Outer layers pin
    /// it once around an operation group so the per-operation pins inside
    /// become cheap nested increments (see
    /// [`ConcurrentIndex::reclaim_handle`](optiql_index_api::ConcurrentIndex::reclaim_handle)).
    pub fn reclaim_handle(&self) -> Option<optiql_reclaim::Handle> {
        Some(self.collector.handle())
    }

    /// Snapshot the structural-event counters.
    pub fn stats(&self) -> TreeStats {
        TreeStats {
            index: self.index_stats(),
            leaf_splits: self.stats.leaf_splits.load(Ordering::Relaxed),
            inner_splits: self.stats.inner_splits.load(Ordering::Relaxed),
            root_splits: self.stats.root_splits.load(Ordering::Relaxed),
            leaf_merges: self.stats.leaf_merges.load(Ordering::Relaxed),
            leaf_unlinks: self.stats.leaf_unlinks.load(Ordering::Relaxed),
            root_collapses: self.stats.root_collapses.load(Ordering::Relaxed),
        }
    }

    /// Snapshot the unified operation/restart accounting.
    pub fn index_stats(&self) -> IndexStats {
        self.index_stats.snapshot()
    }

    #[inline]
    pub(crate) fn restart_loop(&self) -> RestartLoop<'_> {
        RestartLoop::new(&self.index_stats, Event::IndexRestartBtree)
    }

    #[inline]
    fn count_stat(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    // --- lock-type dispatch on type-erased node pointers -----------------

    #[inline]
    pub(crate) unsafe fn node_r_lock(&self, p: *mut NodeBase) -> Option<u64> {
        unsafe {
            if is_leaf(p) {
                as_leaf::<LL, LC>(p).lock.r_lock()
            } else {
                as_inner::<IL, IC>(p).lock.r_lock()
            }
        }
    }

    #[inline]
    pub(crate) unsafe fn node_r_unlock(&self, p: *mut NodeBase, v: u64) -> bool {
        unsafe {
            if is_leaf(p) {
                as_leaf::<LL, LC>(p).lock.r_unlock(v)
            } else {
                as_inner::<IL, IC>(p).lock.r_unlock(v)
            }
        }
    }

    /// Release an abandoned read on a restart path. Free for optimistic
    /// locks; releases the shared lock for pessimistic ones.
    #[inline]
    pub(crate) unsafe fn node_abandon(&self, p: *mut NodeBase, v: u64) {
        if IL::PESSIMISTIC {
            unsafe {
                self.node_r_unlock(p, v);
            }
        }
    }

    /// Read-lock the current root, restarting internally until the locked
    /// node is still the root. Returns `(node, version)`.
    #[inline]
    unsafe fn lock_root_shared(&self, rs: &mut RestartLoop<'_>) -> (*mut NodeBase, u64) {
        loop {
            let node = self.root.load(Ordering::Acquire);
            if let Some(v) = unsafe { self.node_r_lock(node) } {
                if self.root.load(Ordering::Acquire) == node {
                    return (node, v);
                }
                unsafe { self.node_abandon(node, v) };
            }
            rs.pause();
        }
    }

    // --- lookup -----------------------------------------------------------

    /// Point lookup.
    pub fn lookup(&self, key: u64) -> Option<u64> {
        self.index_stats.record_op();
        self.lookup_impl(key)
    }

    /// Lookup body without the per-op accounting: shared by the scalar
    /// entry point and the batched engine's fallback path (which accounts
    /// once per batch).
    pub(crate) fn lookup_impl(&self, key: u64) -> Option<u64> {
        let mut rs = self.restart_loop();
        let _g = self.collector.pin();
        'restart: loop {
            rs.pause();
            let (mut node, mut v) = unsafe { self.lock_root_shared(&mut rs) };
            loop {
                if unsafe { is_leaf(node) } {
                    let leaf = unsafe { as_leaf::<LL, LC>(node) };
                    let res = leaf.lookup(key);
                    if !leaf.lock.r_unlock(v) {
                        continue 'restart;
                    }
                    return res;
                }
                let inner = unsafe { as_inner::<IL, IC>(node) };
                let (child, _) = inner.find_child(key);
                if child.is_null() {
                    unsafe { self.node_abandon(node, v) };
                    continue 'restart;
                }
                if !inner.lock.recheck(v) {
                    continue 'restart;
                }
                let Some(cv) = (unsafe { self.node_r_lock(child) }) else {
                    unsafe { self.node_abandon(node, v) };
                    continue 'restart;
                };
                if !inner.lock.r_unlock(v) {
                    unsafe { self.node_abandon(child, cv) };
                    continue 'restart;
                }
                node = child;
                v = cv;
            }
        }
    }

    // --- update (paper Algorithm 4) ----------------------------------------

    /// Replace the value of an existing key; returns the previous value or
    /// `None` if the key is absent.
    pub fn update(&self, key: u64, val: u64) -> Option<u64> {
        self.write_existing(key, Some(val))
    }

    /// Remove a key; returns the removed value.
    pub fn remove(&self, key: u64) -> Option<u64> {
        let old = self.write_existing(key, None);
        if old.is_some() {
            self.size.fetch_sub(1, Ordering::Relaxed);
        }
        old
    }

    /// Shared descent for update (`val = Some`) and remove (`val = None`).
    fn write_existing(&self, key: u64, val: Option<u64>) -> Option<u64> {
        self.index_stats.record_op();
        let mut rs = self.restart_loop();
        let g = self.collector.pin();
        'restart: loop {
            rs.pause();
            let (mut node, mut v) = unsafe { self.lock_root_shared(&mut rs) };

            // Root is a leaf: lock it directly, re-verifying root identity.
            if unsafe { is_leaf(node) } {
                let leaf = unsafe { as_leaf::<LL, LC>(node) };
                match LL::STRATEGY {
                    WriteStrategy::Upgrade => {
                        let Some(t) = leaf.lock.try_upgrade(v) else {
                            continue 'restart;
                        };
                        // Upgrade success ⇒ unchanged since `v` ⇒ still root.
                        let old = apply_leaf(leaf, key, val);
                        leaf.lock.x_unlock(t);
                        return old;
                    }
                    WriteStrategy::DirectLock | WriteStrategy::DirectLockAor => {
                        let t = leaf.lock.x_lock_adjustable();
                        if self.root.load(Ordering::Acquire) != node {
                            leaf.lock.x_unlock(t);
                            continue 'restart;
                        }
                        leaf.lock.x_finish_adjustable(t);
                        let old = apply_leaf(leaf, key, val);
                        leaf.lock.x_unlock(t);
                        return old;
                    }
                    WriteStrategy::Pessimistic => {
                        // Trade the shared lock for an exclusive one.
                        leaf.lock.r_unlock(v);
                        let t = leaf.lock.x_lock();
                        if self.root.load(Ordering::Acquire) != node {
                            leaf.lock.x_unlock(t);
                            continue 'restart;
                        }
                        let old = apply_leaf(leaf, key, val);
                        leaf.lock.x_unlock(t);
                        return old;
                    }
                }
            }

            // Drill down until the child is a leaf (Alg 4 lines 9-26).
            loop {
                let inner = unsafe { as_inner::<IL, IC>(node) };
                let (child, _) = inner.find_child(key);
                if child.is_null() {
                    unsafe { self.node_abandon(node, v) };
                    continue 'restart;
                }
                if !inner.lock.recheck(v) {
                    continue 'restart;
                }
                if unsafe { is_leaf(child) } {
                    let leaf = unsafe { as_leaf::<LL, LC>(child) };
                    let (token, searched) = match LL::STRATEGY {
                        WriteStrategy::Upgrade => {
                            // Original OLC: read leaf version, validate
                            // parent, search optimistically, then upgrade.
                            let Some(lv) = leaf.lock.r_lock() else {
                                continue 'restart;
                            };
                            if !inner.lock.r_unlock(v) {
                                continue 'restart;
                            }
                            let idx = leaf.search(key);
                            let Some(t) = leaf.lock.try_upgrade(lv) else {
                                continue 'restart;
                            };
                            (t, Some(idx))
                        }
                        WriteStrategy::DirectLock => {
                            // Alg 4: lock the leaf directly, then validate
                            // the parent (its release_sh is pure validation).
                            let t = leaf.lock.x_lock();
                            if !inner.lock.recheck(v) {
                                leaf.lock.x_unlock(t);
                                continue 'restart;
                            }
                            (t, None)
                        }
                        WriteStrategy::DirectLockAor => {
                            // Keep admitting readers while we search.
                            let t = leaf.lock.x_lock_adjustable();
                            if !inner.lock.recheck(v) {
                                leaf.lock.x_unlock(t);
                                continue 'restart;
                            }
                            let idx = leaf.search(key);
                            leaf.lock.x_finish_adjustable(t);
                            (t, Some(idx))
                        }
                        WriteStrategy::Pessimistic => {
                            // We hold the parent shared: the leaf cannot
                            // change identity. Couple: leaf X, release parent.
                            let t = leaf.lock.x_lock();
                            inner.lock.r_unlock(v);
                            (t, None)
                        }
                    };

                    let old = match searched {
                        Some(idx) => apply_leaf_at(leaf, idx, key, val),
                        None => apply_leaf(leaf, key, val),
                    };

                    // Deletion SMOs: unlink an emptied leaf / merge an
                    // under-quarter leaf into its right sibling.
                    if val.is_none() && old.is_some() && !LL::PESSIMISTIC {
                        self.try_shrink(inner, v, child, leaf, &g);
                    }
                    leaf.lock.x_unlock(token);
                    return old;
                }
                // Child is an inner node: couple downwards.
                let ci = unsafe { as_inner::<IL, IC>(child) };
                let Some(cv) = ci.lock.r_lock() else {
                    unsafe { self.node_abandon(node, v) };
                    continue 'restart;
                };
                if !inner.lock.r_unlock(v) {
                    unsafe { self.node_abandon(child, cv) };
                    continue 'restart;
                }
                node = child;
                v = cv;
            }
        }
    }

    /// Best-effort structural shrinking after a delete. Caller holds the
    /// leaf exclusively; `pv` is the optimistic parent version observed
    /// when the leaf was located.
    fn try_shrink(
        &self,
        parent: &Inner<IL, IC>,
        pv: u64,
        leaf_ptr: *mut NodeBase,
        leaf: &Leaf<LL, LC>,
        g: &Guard,
    ) {
        let n = leaf.count();
        if n >= LC / 4 && n != 0 {
            return;
        }
        // Exclusive on the parent via upgrade; abandoning on failure keeps
        // the delete itself correct (the shrink is opportunistic).
        let Some(pt) = parent.lock.try_upgrade(pv) else {
            return;
        };
        let Some(idx) = parent.position_of(leaf_ptr) else {
            parent.lock.x_unlock(pt);
            return;
        };
        if n == 0 && parent.count() >= 1 {
            // Unlink the empty leaf entirely.
            self.count_stat(&self.stats.leaf_unlinks);
            parent.remove_child(idx);
            unsafe { g.retire_ptr(leaf_ptr as *mut Leaf<LL, LC>) };
            // The caller still unlocks through its token; the node stays
            // alive until the epoch advances past every reader & the holder.
            parent.lock.x_unlock(pt);
            return;
        }
        if idx < parent.count() {
            // Merge with the right sibling if the union fits.
            let sib_ptr = parent.child(idx + 1);
            debug_assert!(unsafe { is_leaf(sib_ptr) });
            let sib = unsafe { as_leaf::<LL, LC>(sib_ptr) };
            let st = sib.lock.x_lock();
            if leaf.count() + sib.count() <= LC {
                self.count_stat(&self.stats.leaf_merges);
                leaf.absorb(sib);
                parent.remove_child(idx + 1);
                sib.lock.x_unlock(st);
                unsafe { g.retire_ptr(sib_ptr as *mut Leaf<LL, LC>) };
            } else {
                sib.lock.x_unlock(st);
            }
        }
        parent.lock.x_unlock(pt);
        self.maybe_collapse_root(g);
    }

    /// Replace an inner root that has no separator left with its only child.
    fn maybe_collapse_root(&self, g: &Guard) {
        let root = self.root.load(Ordering::Acquire);
        if unsafe { is_leaf(root) } {
            return;
        }
        let inner = unsafe { as_inner::<IL, IC>(root) };
        let Some(v) = inner.lock.r_lock() else { return };
        if self.root.load(Ordering::Acquire) != root || inner.count() != 0 {
            return;
        }
        let Some(t) = inner.lock.try_upgrade(v) else {
            return;
        };
        if self.root.load(Ordering::Acquire) == root {
            self.count_stat(&self.stats.root_collapses);
            let child = inner.child(0);
            self.root.store(child, Ordering::Release);
            inner.lock.x_unlock(t);
            unsafe { g.retire_ptr(root as *mut Inner<IL, IC>) };
        } else {
            inner.lock.x_unlock(t);
        }
    }

    // --- insert -------------------------------------------------------------

    /// Insert or overwrite; returns the previous value if the key existed.
    pub fn insert(&self, key: u64, val: u64) -> Option<u64> {
        self.index_stats.record_op();
        let old = if LL::PESSIMISTIC {
            self.insert_pessimistic(key, val)
        } else {
            self.insert_optimistic(key, val)
        };
        if old.is_none() {
            self.size.fetch_add(1, Ordering::Relaxed);
        }
        old
    }

    pub(crate) fn insert_optimistic(&self, key: u64, val: u64) -> Option<u64> {
        let mut rs = self.restart_loop();
        let _g = self.collector.pin();
        'restart: loop {
            rs.pause();
            let (mut node, mut v) = unsafe { self.lock_root_shared(&mut rs) };
            let mut parent: Option<(*mut NodeBase, u64)> = None;

            loop {
                if unsafe { is_leaf(node) } {
                    // Only reachable when the root itself is a leaf.
                    debug_assert!(parent.is_none());
                    let leaf = unsafe { as_leaf::<LL, LC>(node) };
                    let Some(t) = leaf.lock.try_upgrade(v) else {
                        continue 'restart;
                    };
                    // Upgrade ⇒ unchanged ⇒ still root.
                    if leaf.is_full() {
                        self.count_stat(&self.stats.root_splits);
                        let (sep, right) = leaf.split();
                        let new_root = Inner::<IL, IC>::alloc();
                        unsafe { as_inner::<IL, IC>(new_root) }.init_root(sep, node, right);
                        // Insert into the proper half before publishing.
                        let old = if key >= sep {
                            unsafe { as_leaf::<LL, LC>(right) }.insert(key, val)
                        } else {
                            leaf.insert(key, val)
                        };
                        self.root.store(new_root, Ordering::Release);
                        leaf.lock.x_unlock(t);
                        return old;
                    }
                    let old = leaf.insert(key, val);
                    leaf.lock.x_unlock(t);
                    return old;
                }

                let inner = unsafe { as_inner::<IL, IC>(node) };
                if inner.is_full() {
                    // Eager split (BTreeOLC): lock parent then node.
                    match parent {
                        Some((p, pv)) => {
                            let pi = unsafe { as_inner::<IL, IC>(p) };
                            let Some(pt) = pi.lock.try_upgrade(pv) else {
                                continue 'restart;
                            };
                            let Some(nt) = inner.lock.try_upgrade(v) else {
                                pi.lock.x_unlock(pt);
                                continue 'restart;
                            };
                            self.count_stat(&self.stats.inner_splits);
                            let (sep, right) = inner.split();
                            pi.insert_child(sep, right);
                            inner.lock.x_unlock(nt);
                            pi.lock.x_unlock(pt);
                        }
                        None => {
                            let Some(nt) = inner.lock.try_upgrade(v) else {
                                continue 'restart;
                            };
                            // Upgrade ⇒ still root (root replacement bumps
                            // the old root's version first).
                            self.count_stat(&self.stats.root_splits);
                            let (sep, right) = inner.split();
                            let new_root = Inner::<IL, IC>::alloc();
                            unsafe { as_inner::<IL, IC>(new_root) }.init_root(sep, node, right);
                            self.root.store(new_root, Ordering::Release);
                            inner.lock.x_unlock(nt);
                        }
                    }
                    continue 'restart;
                }

                // Release the grandparent before descending further.
                if let Some((p, pv)) = parent.take() {
                    let pi = unsafe { as_inner::<IL, IC>(p) };
                    if !pi.lock.r_unlock(pv) {
                        continue 'restart;
                    }
                }

                let (child, _) = inner.find_child(key);
                if child.is_null() {
                    continue 'restart;
                }
                if !inner.lock.recheck(v) {
                    continue 'restart;
                }

                if unsafe { is_leaf(child) } {
                    let leaf = unsafe { as_leaf::<LL, LC>(child) };
                    match LL::STRATEGY {
                        WriteStrategy::Upgrade => {
                            let Some(lv) = leaf.lock.r_lock() else {
                                continue 'restart;
                            };
                            if leaf.is_full() {
                                // Split: parent then leaf.
                                let Some(pt) = inner.lock.try_upgrade(v) else {
                                    continue 'restart;
                                };
                                let Some(lt) = leaf.lock.try_upgrade(lv) else {
                                    inner.lock.x_unlock(pt);
                                    continue 'restart;
                                };
                                self.count_stat(&self.stats.leaf_splits);
                                let (sep, right) = leaf.split();
                                inner.insert_child(sep, right);
                                let old = if key >= sep {
                                    unsafe { as_leaf::<LL, LC>(right) }.insert(key, val)
                                } else {
                                    leaf.insert(key, val)
                                };
                                leaf.lock.x_unlock(lt);
                                inner.lock.x_unlock(pt);
                                return old;
                            }
                            if !inner.lock.r_unlock(v) {
                                continue 'restart;
                            }
                            let Some(lt) = leaf.lock.try_upgrade(lv) else {
                                continue 'restart;
                            };
                            let old = leaf.insert(key, val);
                            leaf.lock.x_unlock(lt);
                            return old;
                        }
                        WriteStrategy::DirectLock | WriteStrategy::DirectLockAor => {
                            // Alg 4 adapted for inserts: lock the leaf
                            // directly, validate the parent, split in place
                            // if needed (parent upgrade subsumes recheck).
                            let lt = leaf.lock.x_lock_adjustable();
                            if !inner.lock.recheck(v) {
                                leaf.lock.x_unlock(lt);
                                continue 'restart;
                            }
                            if leaf.is_full() {
                                let Some(pt) = inner.lock.try_upgrade(v) else {
                                    leaf.lock.x_unlock(lt);
                                    continue 'restart;
                                };
                                leaf.lock.x_finish_adjustable(lt);
                                self.count_stat(&self.stats.leaf_splits);
                                let (sep, right) = leaf.split();
                                inner.insert_child(sep, right);
                                let old = if key >= sep {
                                    unsafe { as_leaf::<LL, LC>(right) }.insert(key, val)
                                } else {
                                    leaf.insert(key, val)
                                };
                                leaf.lock.x_unlock(lt);
                                inner.lock.x_unlock(pt);
                                return old;
                            }
                            leaf.lock.x_finish_adjustable(lt);
                            let old = leaf.insert(key, val);
                            leaf.lock.x_unlock(lt);
                            return old;
                        }
                        WriteStrategy::Pessimistic => unreachable!("dispatched earlier"),
                    }
                }

                // Child is inner: continue coupling.
                let ci = unsafe { as_inner::<IL, IC>(child) };
                let Some(cv) = ci.lock.r_lock() else {
                    continue 'restart;
                };
                parent = Some((node, v));
                node = child;
                v = cv;
            }
        }
    }

    fn insert_pessimistic(&self, key: u64, val: u64) -> Option<u64> {
        let mut rs = self.restart_loop();
        let _g = self.collector.pin();
        'restart: loop {
            rs.pause();
            // Lock the root exclusively (type-dispatched), re-verifying.
            let node = self.root.load(Ordering::Acquire);
            if unsafe { is_leaf(node) } {
                let leaf = unsafe { as_leaf::<LL, LC>(node) };
                let t = leaf.lock.x_lock();
                if self.root.load(Ordering::Acquire) != node {
                    leaf.lock.x_unlock(t);
                    continue 'restart;
                }
                if leaf.is_full() {
                    self.count_stat(&self.stats.root_splits);
                    let (sep, right) = leaf.split();
                    let new_root = Inner::<IL, IC>::alloc();
                    unsafe { as_inner::<IL, IC>(new_root) }.init_root(sep, node, right);
                    let old = if key >= sep {
                        unsafe { as_leaf::<LL, LC>(right) }.insert(key, val)
                    } else {
                        leaf.insert(key, val)
                    };
                    self.root.store(new_root, Ordering::Release);
                    leaf.lock.x_unlock(t);
                    return old;
                }
                let old = leaf.insert(key, val);
                leaf.lock.x_unlock(t);
                return old;
            }

            let inner = unsafe { as_inner::<IL, IC>(node) };
            let t = inner.lock.x_lock();
            if self.root.load(Ordering::Acquire) != node {
                inner.lock.x_unlock(t);
                continue 'restart;
            }
            if inner.is_full() {
                self.count_stat(&self.stats.root_splits);
                let (sep, right) = inner.split();
                let new_root = Inner::<IL, IC>::alloc();
                unsafe { as_inner::<IL, IC>(new_root) }.init_root(sep, node, right);
                self.root.store(new_root, Ordering::Release);
                inner.lock.x_unlock(t);
                continue 'restart;
            }

            // X-couple down; the parent is released once the child is safe
            // (i.e. not full).
            let mut parent = inner;
            let mut ptoken = t;
            loop {
                let (mut child, _) = parent.find_child(key);
                debug_assert!(!child.is_null());
                if unsafe { is_leaf(child) } {
                    let mut leaf = unsafe { as_leaf::<LL, LC>(child) };
                    let mut lt = leaf.lock.x_lock();
                    if leaf.is_full() {
                        self.count_stat(&self.stats.leaf_splits);
                        let (sep, right) = leaf.split();
                        parent.insert_child(sep, right);
                        if key >= sep {
                            let rl = unsafe { as_leaf::<LL, LC>(right) };
                            let rt = rl.lock.x_lock();
                            leaf.lock.x_unlock(lt);
                            leaf = rl;
                            lt = rt;
                        }
                        parent.lock.x_unlock(ptoken);
                        let old = leaf.insert(key, val);
                        leaf.lock.x_unlock(lt);
                        return old;
                    }
                    parent.lock.x_unlock(ptoken);
                    let old = leaf.insert(key, val);
                    leaf.lock.x_unlock(lt);
                    return old;
                }

                let mut ci = unsafe { as_inner::<IL, IC>(child) };
                let mut ct = ci.lock.x_lock();
                if ci.is_full() {
                    self.count_stat(&self.stats.inner_splits);
                    let (sep, right) = ci.split();
                    parent.insert_child(sep, right);
                    if key >= sep {
                        let ri = unsafe { as_inner::<IL, IC>(right) };
                        let rt = ri.lock.x_lock();
                        ci.lock.x_unlock(ct);
                        ci = ri;
                        ct = rt;
                        child = right;
                    }
                }
                let _ = child;
                parent.lock.x_unlock(ptoken);
                parent = ci;
                ptoken = ct;
            }
        }
    }

    // --- range scan -----------------------------------------------------------

    /// Collect up to `limit` entries with keys in `[start, u64::MAX]`, in
    /// ascending key order.
    pub fn scan(&self, start: u64, limit: usize) -> Vec<(u64, u64)> {
        self.index_stats.record_op();
        let mut out = Vec::with_capacity(limit.min(1024));
        let mut from = start;
        let _g = self.collector.pin();
        let mut rs = self.restart_loop();
        while out.len() < limit {
            // Fresh ladder per leaf: a restart storm on one leaf must not
            // leave the loop escalated for the rest of the range.
            rs.reset();
            let mut batch = Vec::new();
            // Descend to the leaf containing `from`, remembering the
            // tightest upper separator on the path.
            let upper = 'restart: loop {
                rs.pause();
                batch.clear();
                let (mut node, mut v) = unsafe { self.lock_root_shared(&mut rs) };
                let mut upper: Option<u64> = None;
                loop {
                    if unsafe { is_leaf(node) } {
                        let leaf = unsafe { as_leaf::<LL, LC>(node) };
                        leaf.collect_from(from, limit - out.len(), &mut batch);
                        if !leaf.lock.r_unlock(v) {
                            continue 'restart;
                        }
                        break 'restart upper;
                    }
                    let inner = unsafe { as_inner::<IL, IC>(node) };
                    let (child, up) = inner.find_child(from);
                    if child.is_null() {
                        unsafe { self.node_abandon(node, v) };
                        continue 'restart;
                    }
                    if !inner.lock.recheck(v) {
                        continue 'restart;
                    }
                    if let Some(u) = up {
                        upper = Some(u);
                    }
                    let Some(cv) = (unsafe { self.node_r_lock(child) }) else {
                        unsafe { self.node_abandon(node, v) };
                        continue 'restart;
                    };
                    if !inner.lock.r_unlock(v) {
                        unsafe { self.node_abandon(child, cv) };
                        continue 'restart;
                    }
                    node = child;
                    v = cv;
                }
            };
            out.append(&mut batch);
            match upper {
                Some(u) if out.len() < limit => from = u,
                _ => break,
            }
        }
        out
    }

    // --- validation (test support) ---------------------------------------------

    /// Walk the tree single-threadedly and assert every structural
    /// invariant; returns the entry count. Panics on violation.
    pub fn check_invariants(&self) -> usize {
        fn walk<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize>(
            p: *mut NodeBase,
            lo: Option<u64>,
            hi: Option<u64>,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> usize {
            unsafe {
                if is_leaf(p) {
                    match leaf_depth {
                        Some(d) => assert_eq!(*d, depth, "leaves at unequal depth"),
                        None => *leaf_depth = Some(depth),
                    }
                    let l = as_leaf::<LL, LC>(p);
                    let n = l.count();
                    for i in 0..n {
                        let k = l.key(i);
                        if i > 0 {
                            assert!(l.key(i - 1) < k, "leaf keys out of order");
                        }
                        if let Some(lo) = lo {
                            assert!(k >= lo, "leaf key below lower fence");
                        }
                        if let Some(hi) = hi {
                            assert!(k < hi, "leaf key above upper fence");
                        }
                    }
                    n
                } else {
                    let node = as_inner::<IL, IC>(p);
                    let n = node.count();
                    let mut total = 0;
                    for i in 0..n {
                        let k = node.key(i);
                        if i > 0 {
                            assert!(node.key(i - 1) < k, "separators out of order");
                        }
                        if let Some(lo) = lo {
                            assert!(k >= lo, "separator below lower fence");
                        }
                        if let Some(hi) = hi {
                            assert!(k < hi, "separator above upper fence");
                        }
                    }
                    for i in 0..=n {
                        let c_lo = if i == 0 { lo } else { Some(node.key(i - 1)) };
                        let c_hi = if i == n { hi } else { Some(node.key(i)) };
                        let child = node.child(i);
                        assert!(!child.is_null(), "null child in inner node");
                        total += walk::<IL, LL, IC, LC>(child, c_lo, c_hi, depth + 1, leaf_depth);
                    }
                    total
                }
            }
        }
        let mut leaf_depth = None;
        walk::<IL, LL, IC, LC>(
            self.root.load(Ordering::Acquire),
            None,
            None,
            0,
            &mut leaf_depth,
        )
    }
}

/// Apply an update (`Some(val)`) or removal (`None`) to a locked leaf.
#[inline]
fn apply_leaf<LL: IndexLock, const LC: usize>(
    leaf: &Leaf<LL, LC>,
    key: u64,
    val: Option<u64>,
) -> Option<u64> {
    match val {
        Some(v) => leaf.update(key, v),
        None => leaf.remove(key),
    }
}

/// As [`apply_leaf`], but with a pre-computed search result (the slot was
/// located while readers were still admitted — Upgrade / AOR paths).
#[inline]
fn apply_leaf_at<LL: IndexLock, const LC: usize>(
    leaf: &Leaf<LL, LC>,
    idx: Option<usize>,
    key: u64,
    val: Option<u64>,
) -> Option<u64> {
    match idx {
        None => None,
        Some(_) => apply_leaf(leaf, key, val),
    }
}

impl<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize> Drop
    for BPlusTree<IL, LL, IC, LC>
{
    fn drop(&mut self) {
        fn free<IL: IndexLock, LL: IndexLock, const IC: usize, const LC: usize>(p: *mut NodeBase) {
            unsafe {
                if is_leaf(p) {
                    drop(Box::from_raw(p as *mut Leaf<LL, LC>));
                } else {
                    let inner = as_inner::<IL, IC>(p);
                    let n = inner.count();
                    for i in 0..=n {
                        free::<IL, LL, IC, LC>(inner.child(i));
                    }
                    drop(Box::from_raw(p as *mut Inner<IL, IC>));
                }
            }
        }
        free::<IL, LL, IC, LC>(self.root.load(Ordering::Acquire));
        self.collector.flush();
    }
}
