//! Functional tests for every B+-tree lock configuration.

use optiql_btree::{
    BTreeMcsRw, BTreeOptLock, BTreeOptiClh, BTreeOptiQL, BTreeOptiQLAor, BTreeOptiQLNor,
    BTreePthread,
};

macro_rules! for_each_config {
    ($name:ident, $body:expr) => {
        mod $name {
            use super::*;
            #[test]
            fn optlock() {
                $body(&BTreeOptLock::<15, 15>::new());
            }
            #[test]
            fn optiql() {
                $body(&BTreeOptiQL::<15, 15>::new());
            }
            #[test]
            fn optiql_nor() {
                $body(&BTreeOptiQLNor::<15, 15>::new());
            }
            #[test]
            fn optiql_aor() {
                $body(&BTreeOptiQLAor::<15, 15>::new());
            }
            #[test]
            fn opticlh() {
                $body(&BTreeOptiClh::<15, 15>::new());
            }
            #[test]
            fn mcs_rw() {
                $body(&BTreeMcsRw::<15, 15>::new());
            }
            #[test]
            fn pthread() {
                $body(&BTreePthread::<15, 15>::new());
            }
        }
    };
}

fn basic_crud<T: TreeOps>(t: &T) {
    assert!(t.is_empty());
    assert_eq!(t.lookup(1), None);
    assert_eq!(t.insert(1, 10), None);
    assert_eq!(t.insert(2, 20), None);
    assert_eq!(t.lookup(1), Some(10));
    assert_eq!(t.lookup(2), Some(20));
    assert_eq!(t.lookup(3), None);
    assert_eq!(t.update(1, 11), Some(10));
    assert_eq!(t.update(3, 30), None);
    assert_eq!(t.lookup(1), Some(11));
    assert_eq!(t.insert(2, 21), Some(20), "insert overwrites");
    assert_eq!(t.remove(2), Some(21));
    assert_eq!(t.remove(2), None);
    assert_eq!(t.len(), 1);
    t.check();
}

fn bulk_ascending<T: TreeOps>(t: &T) {
    const N: u64 = 20_000;
    for k in 0..N {
        assert_eq!(t.insert(k, k * 2), None);
    }
    assert_eq!(t.len(), N as usize);
    assert_eq!(t.check(), N as usize);
    for k in 0..N {
        assert_eq!(t.lookup(k), Some(k * 2), "key {k}");
    }
    assert_eq!(t.lookup(N), None);
}

fn bulk_descending_and_random<T: TreeOps>(t: &T) {
    use rand::seq::SliceRandom;
    const N: u64 = 10_000;
    for k in (0..N).rev() {
        t.insert(k, k);
    }
    assert_eq!(t.check(), N as usize);
    let mut keys: Vec<u64> = (0..N).collect();
    keys.shuffle(&mut rand::rng());
    for k in keys.iter().take(5_000) {
        assert_eq!(t.remove(*k), Some(*k));
    }
    assert_eq!(t.len(), (N as usize) - 5_000);
    t.check();
    for k in keys.iter().take(5_000) {
        assert_eq!(t.lookup(*k), None);
    }
    for k in keys.iter().skip(5_000) {
        assert_eq!(t.lookup(*k), Some(*k));
    }
}

fn delete_everything<T: TreeOps>(t: &T) {
    const N: u64 = 5_000;
    for k in 0..N {
        t.insert(k, k);
    }
    for k in 0..N {
        assert_eq!(t.remove(k), Some(k), "key {k}");
    }
    assert_eq!(t.len(), 0);
    for k in 0..N {
        assert_eq!(t.lookup(k), None);
    }
    t.check();
    // Tree must be fully reusable after total deletion.
    for k in 0..100 {
        assert_eq!(t.insert(k, k + 1), None);
    }
    assert_eq!(t.check(), 100);
}

fn scan_ranges<T: TreeOps>(t: &T) {
    for k in (0..1000u64).map(|i| i * 2) {
        t.insert(k, k + 1);
    }
    // Full scan.
    let all = t.scan(0, usize::MAX);
    assert_eq!(all.len(), 1000);
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "ascending order");
    // Mid-range scan starting between keys.
    let part = t.scan(501, 10);
    assert_eq!(part.len(), 10);
    assert_eq!(part[0].0, 502);
    assert_eq!(part[9].0, 520);
    assert!(part.iter().all(|&(k, v)| v == k + 1));
    // Scan past the end.
    assert!(t.scan(5_000, 10).is_empty());
    // Limit zero.
    assert!(t.scan(0, 0).is_empty());
}

fn sparse_keys<T: TreeOps>(t: &T) {
    // Large gaps + extremes exercise separator logic.
    let keys = [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 1];
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(t.insert(*k, i as u64), None);
    }
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(t.lookup(*k), Some(i as u64));
    }
    t.check();
}

for_each_config!(crud, basic_crud);
for_each_config!(ascending, bulk_ascending);
for_each_config!(mixed, bulk_descending_and_random);
for_each_config!(drain, delete_everything);
for_each_config!(scans, scan_ranges);
for_each_config!(sparse, sparse_keys);

/// Object-safe-ish adapter so the test bodies stay generic.
trait TreeOps {
    fn insert(&self, k: u64, v: u64) -> Option<u64>;
    fn update(&self, k: u64, v: u64) -> Option<u64>;
    fn lookup(&self, k: u64) -> Option<u64>;
    fn remove(&self, k: u64) -> Option<u64>;
    fn scan(&self, from: u64, limit: usize) -> Vec<(u64, u64)>;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool;
    fn check(&self) -> usize;
}

impl<IL, LL, const IC: usize, const LC: usize> TreeOps for optiql_btree::BPlusTree<IL, LL, IC, LC>
where
    IL: optiql::IndexLock,
    LL: optiql::IndexLock,
{
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        optiql_btree::BPlusTree::insert(self, k, v)
    }
    fn update(&self, k: u64, v: u64) -> Option<u64> {
        optiql_btree::BPlusTree::update(self, k, v)
    }
    fn lookup(&self, k: u64) -> Option<u64> {
        optiql_btree::BPlusTree::lookup(self, k)
    }
    fn remove(&self, k: u64) -> Option<u64> {
        optiql_btree::BPlusTree::remove(self, k)
    }
    fn scan(&self, from: u64, limit: usize) -> Vec<(u64, u64)> {
        optiql_btree::BPlusTree::scan(self, from, limit)
    }
    fn len(&self) -> usize {
        optiql_btree::BPlusTree::len(self)
    }
    fn is_empty(&self) -> bool {
        optiql_btree::BPlusTree::is_empty(self)
    }
    fn check(&self) -> usize {
        self.check_invariants()
    }
}
