//! Multi-threaded stress tests: these run the actual paper scenarios
//! (contended updates, mixed read/write, inserts with SMOs) and verify
//! exact post-conditions.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use optiql_btree::{BTreeMcsRw, BTreeOptLock, BTreeOptiQL, BTreeOptiQLAor, BTreeOptiQLNor};

const THREADS: usize = 4;

/// Concurrent disjoint inserts: every thread owns a key stripe; the final
/// tree must contain exactly the union.
fn disjoint_inserts<T>(tree: Arc<T>)
where
    T: Tree + Send + Sync + 'static,
{
    const PER: u64 = 4_000;
    let hs: Vec<_> = (0..THREADS as u64)
        .map(|tid| {
            let t = Arc::clone(&tree);
            std::thread::spawn(move || {
                for i in 0..PER {
                    let k = i * THREADS as u64 + tid;
                    assert_eq!(t.insert(k, k + 1), None);
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    assert_eq!(tree.len(), THREADS * PER as usize);
    assert_eq!(tree.check(), THREADS * PER as usize);
    for k in 0..(THREADS as u64 * PER) {
        assert_eq!(tree.lookup(k), Some(k + 1), "key {k}");
    }
}

/// Contended updates on a tiny hot set: sum of observed old values must
/// telescope (every update sees the previous one).
fn contended_update_chain<T>(tree: Arc<T>)
where
    T: Tree + Send + Sync + 'static,
{
    const HOT: u64 = 4;
    const PER: u64 = 3_000;
    for k in 0..HOT {
        tree.insert(k, 0);
    }
    let hs: Vec<_> = (0..THREADS)
        .map(|_| {
            let t = Arc::clone(&tree);
            std::thread::spawn(move || {
                for i in 0..PER {
                    let k = i % HOT;
                    // Atomic read-modify-write through the index API is not
                    // provided; instead every thread overwrites with a
                    // unique stamp and we only require updates never lose
                    // the key.
                    assert!(t.update(k, i).is_some(), "update lost key {k}");
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    assert_eq!(tree.len(), HOT as usize);
    for k in 0..HOT {
        assert!(tree.lookup(k).is_some());
    }
}

/// Readers run against concurrent inserts and must only ever observe
/// fully-inserted entries (value == key + 1, never torn).
fn read_while_inserting<T>(tree: Arc<T>)
where
    T: Tree + Send + Sync + 'static,
{
    const N: u64 = 8_000;
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let t = Arc::clone(&tree);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for k in 0..N {
                t.insert(k, k + 1);
            }
            stop.store(true, Ordering::Release);
        })
    };
    let readers: Vec<_> = (0..THREADS - 1)
        .map(|seed| {
            let t = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut x = seed as u64 + 1;
                let mut seen = 0u64;
                let mut probes = 0u64;
                // Probe a minimum amount even if the writer wins the race
                // outright (single-CPU hosts serialize the threads).
                while !stop.load(Ordering::Acquire) || probes < 4_000 {
                    probes += 1;
                    // xorshift for cheap pseudo-random probing
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % N;
                    if let Some(v) = t.lookup(k) {
                        assert_eq!(v, k + 1, "torn or misplaced value for {k}");
                        seen += 1;
                    }
                }
                seen
            })
        })
        .collect();
    writer.join().unwrap();
    let total: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "readers made no progress");
    assert_eq!(tree.check(), N as usize);
}

/// Mixed insert/remove churn with per-thread key ownership; exact final
/// membership is verified.
fn insert_remove_churn<T>(tree: Arc<T>)
where
    T: Tree + Send + Sync + 'static,
{
    const PER: u64 = 2_000;
    let hs: Vec<_> = (0..THREADS as u64)
        .map(|tid| {
            let t = Arc::clone(&tree);
            std::thread::spawn(move || {
                // Each thread inserts its stripe, removes the even half,
                // reinserts a quarter.
                let key = |i: u64| i * THREADS as u64 + tid;
                for i in 0..PER {
                    assert_eq!(t.insert(key(i), i), None);
                }
                for i in (0..PER).step_by(2) {
                    assert_eq!(t.remove(key(i)), Some(i));
                }
                for i in (0..PER).step_by(4) {
                    assert_eq!(t.insert(key(i), i + 100), None);
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    let expected_per_thread = PER / 2 + PER / 4;
    assert_eq!(tree.len(), (expected_per_thread * THREADS as u64) as usize);
    tree.check();
    for tid in 0..THREADS as u64 {
        let key = |i: u64| i * THREADS as u64 + tid;
        for i in 0..PER {
            let expect = match i % 4 {
                0 => Some(i + 100),
                2 => None,
                _ => Some(i),
            };
            assert_eq!(tree.lookup(key(i)), expect, "thread {tid} key index {i}");
        }
    }
}

macro_rules! stress {
    ($name:ident, $body:ident) => {
        mod $name {
            use super::*;
            #[test]
            fn optlock() {
                $body(Arc::new(BTreeOptLock::<15, 15>::new()));
            }
            #[test]
            fn optiql() {
                $body(Arc::new(BTreeOptiQL::<15, 15>::new()));
            }
            #[test]
            fn optiql_nor() {
                $body(Arc::new(BTreeOptiQLNor::<15, 15>::new()));
            }
            #[test]
            fn optiql_aor() {
                $body(Arc::new(BTreeOptiQLAor::<15, 15>::new()));
            }
            #[test]
            fn mcs_rw() {
                $body(Arc::new(BTreeMcsRw::<15, 15>::new()));
            }
        }
    };
}

stress!(disjoint, disjoint_inserts);
stress!(hotset, contended_update_chain);
stress!(read_write, read_while_inserting);
stress!(churn, insert_remove_churn);

trait Tree {
    fn insert(&self, k: u64, v: u64) -> Option<u64>;
    fn update(&self, k: u64, v: u64) -> Option<u64>;
    fn lookup(&self, k: u64) -> Option<u64>;
    fn remove(&self, k: u64) -> Option<u64>;
    fn len(&self) -> usize;
    fn check(&self) -> usize;
}

impl<IL, LL, const IC: usize, const LC: usize> Tree for optiql_btree::BPlusTree<IL, LL, IC, LC>
where
    IL: optiql::IndexLock,
    LL: optiql::IndexLock,
{
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        optiql_btree::BPlusTree::insert(self, k, v)
    }
    fn update(&self, k: u64, v: u64) -> Option<u64> {
        optiql_btree::BPlusTree::update(self, k, v)
    }
    fn lookup(&self, k: u64) -> Option<u64> {
        optiql_btree::BPlusTree::lookup(self, k)
    }
    fn remove(&self, k: u64) -> Option<u64> {
        optiql_btree::BPlusTree::remove(self, k)
    }
    fn len(&self) -> usize {
        optiql_btree::BPlusTree::len(self)
    }
    fn check(&self) -> usize {
        self.check_invariants()
    }
}
