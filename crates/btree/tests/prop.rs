//! Property-based model checking: the concurrent B+-tree must behave
//! exactly like `std::collections::BTreeMap` under arbitrary single-threaded
//! operation sequences (the concurrency tests cover interleavings; this
//! covers the structural state space — splits, merges, root collapse).

use std::collections::BTreeMap;

use proptest::prelude::*;

use optiql_btree::{BTreeOptLock, BTreeOptiQL, BTreeOptiQLNor};

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Update(u64, u64),
    Remove(u64),
    Lookup(u64),
    Scan(u64, usize),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_space, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..key_space, any::<u64>()).prop_map(|(k, v)| Op::Update(k, v)),
        (0..key_space).prop_map(Op::Remove),
        (0..key_space).prop_map(Op::Lookup),
        (0..key_space, 0..64usize).prop_map(|(k, n)| Op::Scan(k, n)),
    ]
}

fn run_model<IL, LL, const IC: usize, const LC: usize>(
    tree: &optiql_btree::BPlusTree<IL, LL, IC, LC>,
    ops: &[Op],
) where
    IL: optiql::IndexLock,
    LL: optiql::IndexLock,
{
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                assert_eq!(tree.insert(k, v), model.insert(k, v), "insert {k}");
            }
            Op::Update(k, v) => {
                let expect = model.get_mut(&k).map(|slot| std::mem::replace(slot, v));
                assert_eq!(tree.update(k, v), expect, "update {k}");
            }
            Op::Remove(k) => {
                assert_eq!(tree.remove(k), model.remove(&k), "remove {k}");
            }
            Op::Lookup(k) => {
                assert_eq!(tree.lookup(k), model.get(&k).copied(), "lookup {k}");
            }
            Op::Scan(k, n) => {
                let got = tree.scan(k, n);
                let expect: Vec<(u64, u64)> =
                    model.range(k..).take(n).map(|(a, b)| (*a, *b)).collect();
                assert_eq!(got, expect, "scan from {k} limit {n}");
            }
        }
    }
    assert_eq!(tree.len(), model.len());
    assert_eq!(tree.check_invariants(), model.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Small nodes + small key space maximize SMO coverage.
    #[test]
    fn optlock_matches_model(ops in prop::collection::vec(op_strategy(256), 1..800)) {
        run_model(&BTreeOptLock::<4, 4>::new(), &ops);
    }

    #[test]
    fn optiql_matches_model(ops in prop::collection::vec(op_strategy(256), 1..800)) {
        run_model(&BTreeOptiQL::<4, 4>::new(), &ops);
    }

    #[test]
    fn optiql_nor_matches_model(ops in prop::collection::vec(op_strategy(256), 1..800)) {
        run_model(&BTreeOptiQLNor::<4, 4>::new(), &ops);
    }

    #[test]
    fn wide_keyspace_matches_model(ops in prop::collection::vec(op_strategy(u64::MAX), 1..400)) {
        run_model(&BTreeOptiQL::<6, 6>::new(), &ops);
    }
}
