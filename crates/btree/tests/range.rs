//! Differential tests for the streaming `range` iterator: against the
//! `BTreeMap` model when quiescent (property-based, every bound shape),
//! and against invariants — ascending, in-bounds, no stable key lost or
//! duplicated — under concurrent split/collapse churn.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use optiql::{IndexLock, OptLock, OptiQL};
use optiql_btree::BPlusTree;
use optiql_index_api::{key_above_start, key_below_end, BoxedBytes, Bytes};

/// Tiny nodes: every handful of inserts splits, every handful of removes
/// collapses — the structural cases dominate instead of hiding.
type TinyTree = BPlusTree<OptLock, OptiQL, 4, 4>;

fn bound_strategy(key_space: u64) -> impl Strategy<Value = Bound<u64>> {
    prop_oneof![
        1 => Just(Bound::Unbounded),
        4 => (0..key_space).prop_map(Bound::Included),
        4 => (0..key_space).prop_map(Bound::Excluded),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quiescent differential: after an arbitrary population, `range`
    /// must yield exactly what `BTreeMap::range` yields, for every bound
    /// shape including degenerate ones.
    #[test]
    fn range_matches_model_when_quiescent(
        kvs in proptest::collection::vec((0..2_000u64, any::<u64>()), 0..300),
        start in bound_strategy(2_000),
        end in bound_strategy(2_000),
    ) {
        let entries: BTreeMap<u64, u64> = kvs.into_iter().collect();
        let tree = TinyTree::new();
        for (&k, &v) in &entries {
            tree.insert(k, v);
        }
        let got: Vec<(u64, u64)> = tree.range(start, end).collect();
        let want: Vec<(u64, u64)> = entries
            .iter()
            .map(|(&k, &v)| (k, v))
            .filter(|(k, _)| key_above_start(k, &start) && key_below_end(k, &end))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// The iterator must agree with the materializing scan it supersedes.
    #[test]
    fn range_agrees_with_scan(
        keys in proptest::collection::vec(0..500u64, 0..120),
        from in 0..500u64,
        limit in 0..64usize,
    ) {
        let tree = TinyTree::new();
        for &k in &keys {
            tree.insert(k, k + 1);
        }
        let scanned = tree.scan(from, limit);
        let streamed: Vec<(u64, u64)> = tree
            .range(Bound::Included(from), Bound::Unbounded)
            .take(limit)
            .collect();
        prop_assert_eq!(scanned, streamed);
    }
}

#[test]
fn byte_keys_stream_in_lexicographic_order() {
    let tree: BPlusTree<OptLock, OptiQL, 4, 4, Bytes> = BPlusTree::new();
    let mut model: BTreeMap<Bytes, u64> = BTreeMap::new();
    // Keys chosen to stress the encoding: escape bytes, embedded NULs,
    // prefixes of each other, and >8-byte strings.
    let raw: &[&[u8]] = &[
        b"a",
        b"ab",
        b"abc",
        b"b",
        b"b\x00",
        b"b\x00\x01",
        b"b\x01",
        b"longer-than-a-machine-word",
        b"longer-than-a-machine-word!",
        b"\x00",
        b"\x00\x00",
        b"\x01",
        b"",
        b"zz",
    ];
    for (i, r) in raw.iter().enumerate() {
        let k = Bytes::from(*r);
        assert_eq!(tree.insert(k.clone(), i as u64), model.insert(k, i as u64));
    }
    let got: Vec<(Bytes, u64)> = tree.range(Bound::Unbounded, Bound::Unbounded).collect();
    let want: Vec<(Bytes, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
    assert_eq!(got, want, "full stream in raw lexicographic order");
    // Sub-range with exclusive bounds across the prefix family.
    let got: Vec<Bytes> = tree
        .range(
            Bound::Excluded(Bytes::from("a")),
            Bound::Included(Bytes::from(&b"b\x00"[..])),
        )
        .map(|(k, _)| k)
        .collect();
    let want: Vec<Bytes> = model
        .range((
            Bound::Excluded(Bytes::from("a")),
            Bound::Included(Bytes::from(&b"b\x00"[..])),
        ))
        .map(|(k, _)| k.clone())
        .collect();
    assert_eq!(got, want);
    // Point ops keep working after the scans (slot ownership intact).
    assert_eq!(tree.remove(Bytes::from("ab")), Some(1));
    assert_eq!(tree.lookup(Bytes::from("ab")), None);
    assert_eq!(tree.check_invariants(), model.len() - 1);
}

/// Key strategy pinning the inline/pointer slot boundary: lengths
/// clustered at 6/7/8 bytes (the last inline length and the first heap
/// length), bytes biased toward the `0x00`/`0x01` escape values, and
/// the empty key.
fn boundary_key() -> impl Strategy<Value = Vec<u8>> {
    fn escape_byte() -> impl Strategy<Value = u8> {
        prop_oneof![
            2 => Just(0x00u8),
            2 => Just(0x01u8),
            1 => Just(0xFFu8),
            3 => any::<u8>(),
        ]
    }
    prop_oneof![
        1 => Just(Vec::new()),
        6 => proptest::collection::vec(escape_byte(), 6..9),
        3 => proptest::collection::vec(escape_byte(), 0..13),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential over the inline/pointer boundary: the same key set
    /// through the `Bytes` fast path (inline slots + prefix truncation)
    /// and the `BoxedBytes` baseline (pointer slots only) must both
    /// match the `BTreeMap` model — lookups, full ordered streams, and
    /// removals alike.
    #[test]
    fn inline_and_pointer_representations_agree(
        raw_list in proptest::collection::vec(boundary_key(), 0..100),
    ) {
        let fast: BPlusTree<OptLock, OptiQL, 4, 4, Bytes> = BPlusTree::new();
        let base: BPlusTree<OptLock, OptiQL, 4, 4, BoxedBytes> = BPlusTree::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (i, r) in raw_list.iter().enumerate() {
            let v = i as u64;
            prop_assert_eq!(fast.insert(Bytes::from(&r[..]), v), model.get(r).copied());
            prop_assert_eq!(base.insert(BoxedBytes::from(&r[..]), v), model.insert(r.clone(), v));
        }
        for r in &raw_list {
            let want = model.get(r).copied();
            prop_assert_eq!(fast.lookup(Bytes::from(&r[..])), want);
            prop_assert_eq!(base.lookup(BoxedBytes::from(&r[..])), want);
        }
        let want: Vec<(Vec<u8>, u64)> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        let got_fast: Vec<(Vec<u8>, u64)> = fast
            .range(Bound::Unbounded, Bound::Unbounded)
            .map(|(k, v)| (k.as_bytes().to_vec(), v))
            .collect();
        let got_base: Vec<(Vec<u8>, u64)> = base
            .range(Bound::Unbounded, Bound::Unbounded)
            .map(|(k, v)| (k.0.as_bytes().to_vec(), v))
            .collect();
        prop_assert_eq!(&got_fast, &want, "fast path stream order");
        prop_assert_eq!(&got_base, &want, "baseline stream order");
        // Remove every other key through both representations.
        for r in raw_list.iter().step_by(2) {
            let want = model.remove(r);
            prop_assert_eq!(fast.remove(Bytes::from(&r[..])), want);
            prop_assert_eq!(base.remove(BoxedBytes::from(&r[..])), want);
        }
        prop_assert_eq!(fast.check_invariants(), model.len());
        prop_assert_eq!(fast.len(), model.len());
        prop_assert_eq!(base.len(), model.len());
    }
}

/// Concurrent churn: writers continuously insert/remove "churn" keys —
/// with 4-wide nodes every cycle splits and collapses leaves — while
/// readers stream ranges. Stable keys must always be yielded exactly
/// once, in order, within bounds.
fn churn_harness<IL: IndexLock, LL: IndexLock>(tree: Arc<BPlusTree<IL, LL, 4, 4>>) {
    const STABLE: u64 = 400;
    const WRITERS: usize = 2;
    const READERS: usize = 2;
    for s in 0..STABLE {
        tree.insert(s * 4, s); // stable keys: multiples of 4
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let t = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut x = 0xC0FFEE ^ w as u64;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let churn = (x % (STABLE * 4)) | 2; // never a multiple of 4
                    if x & 1 << 63 == 0 {
                        t.insert(churn, x);
                    } else {
                        t.remove(churn);
                    }
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let t = Arc::clone(&tree);
            std::thread::spawn(move || {
                let mut x = 0xDECADE ^ r as u64;
                for _ in 0..300 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let lo = x % (STABLE * 4);
                    let hi = lo + x % 512;
                    let got: Vec<(u64, u64)> =
                        t.range(Bound::Included(lo), Bound::Excluded(hi)).collect();
                    for w in got.windows(2) {
                        assert!(w[0].0 < w[1].0, "stream must ascend strictly");
                    }
                    assert!(
                        got.iter().all(|&(k, _)| k >= lo && k < hi),
                        "stream must respect bounds"
                    );
                    let stable: Vec<u64> =
                        got.iter().map(|&(k, _)| k).filter(|k| k % 4 == 0).collect();
                    let want: Vec<u64> = (lo..hi.min(STABLE * 4)).filter(|k| k % 4 == 0).collect();
                    assert_eq!(stable, want, "every stable key in [{lo},{hi}) exactly once");
                }
            })
        })
        .collect();
    for h in readers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for h in writers {
        h.join().unwrap();
    }
    tree.check_invariants();
}

#[test]
fn range_survives_split_collapse_churn_optiql() {
    churn_harness(Arc::new(TinyTree::new()));
}

#[test]
fn range_survives_split_collapse_churn_optlock() {
    churn_harness(Arc::new(BPlusTree::<OptLock, OptLock, 4, 4>::new()));
}

#[test]
fn range_survives_split_collapse_churn_pessimistic() {
    churn_harness(Arc::new(BPlusTree::<
        optiql::McsRwLock,
        optiql::McsRwLock,
        4,
        4,
    >::new()));
}
