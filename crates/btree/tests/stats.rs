//! Structural-event counter tests: the counters must reflect exactly the
//! SMOs a deterministic single-threaded history triggers.

use optiql_btree::{BTreeOptLock, BTreeOptiQL};

#[test]
fn fresh_tree_has_zero_stats() {
    let t: BTreeOptiQL = BTreeOptiQL::new();
    assert_eq!(t.stats(), Default::default());
}

#[test]
fn single_threaded_restarts_are_exactly_smo_retries() {
    // The restart counter includes the *by-design* restarts after eager
    // inner/root splits (BTreeOLC restarts the descent after an SMO);
    // without contention those are the only restarts possible.
    let t: BTreeOptiQL = BTreeOptiQL::new();
    for k in 0..20_000u64 {
        t.insert(k, k);
    }
    let after_insert = t.stats();
    // Every inner/root split restarts the descent, except the very first
    // root-leaf split which completes its insert in place.
    assert_eq!(
        after_insert.index.restarts,
        after_insert.inner_splits + after_insert.root_splits - 1,
        "uncontended restarts must equal SMO retries: {after_insert:?}"
    );
    assert_eq!(
        after_insert.index.ops, 20_000,
        "one recorded op per public insert"
    );
    // Lookups and updates perform no SMOs: the counter must not move.
    for k in 0..20_000u64 {
        t.lookup(k);
        t.update(k, k + 1);
    }
    assert_eq!(t.stats().index.restarts, after_insert.index.restarts);
    assert_eq!(t.stats().index.ops, 60_000);
}

#[test]
fn splits_are_counted_exactly() {
    // Tiny nodes make the arithmetic easy to pin down: filling one leaf of
    // capacity 4 and inserting once more must split exactly once, growing
    // a root.
    let t: BTreeOptiQL<4, 4> = BTreeOptiQL::new();
    for k in 0..4u64 {
        t.insert(k, k);
    }
    assert_eq!(t.stats().root_splits + t.stats().leaf_splits, 0);
    t.insert(4, 4); // first split: the root leaf
    let s = t.stats();
    assert_eq!(s.root_splits, 1, "root leaf split grows the tree");
    assert_eq!(s.leaf_splits, 0);

    // Keep going: more inserts must produce ordinary leaf splits.
    for k in 5..200u64 {
        t.insert(k, k);
    }
    let s = t.stats();
    assert!(s.leaf_splits > 0, "leaf splits expected");
    assert!(s.inner_splits > 0, "inner splits expected for 200 keys");
    assert_eq!(t.check_invariants(), 200);
}

#[test]
fn deletes_count_unlinks_merges_and_collapses() {
    let t: BTreeOptiQL<4, 4> = BTreeOptiQL::new();
    for k in 0..500u64 {
        t.insert(k, k);
    }
    for k in 0..500u64 {
        t.remove(k);
    }
    let s = t.stats();
    assert!(
        s.leaf_merges + s.leaf_unlinks > 0,
        "draining the tree must shrink it: {s:?}"
    );
    t.check_invariants();
}

#[test]
fn contended_upgrades_restart_on_optlock() {
    // Two threads updating one hot key through the upgrade path must
    // produce at least one restart eventually (CAS failures), while the
    // total op count stays exact.
    use std::sync::Arc;
    let t: Arc<BTreeOptLock> = Arc::new(BTreeOptLock::new());
    t.insert(0, 0);
    let hs: Vec<_> = (0..4)
        .map(|_| {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    t.update(0, i);
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    // Restart counts are probabilistic: on a many-core host the CAS race
    // guarantees failures; on a single-CPU host conflicts only arise at
    // preemption points and may round to zero. Assert consistency rather
    // than a lower bound, plus exact end-state correctness.
    let s = t.stats();
    assert_eq!(
        s.leaf_splits + s.inner_splits + s.root_splits,
        0,
        "updates never split"
    );
    assert!(t.lookup(0).is_some());
    assert_eq!(t.len(), 1);
}
