//! # optiql-index-api — the index-agnostic concurrent-index surface
//!
//! Both paper indexes (`optiql-btree`, `optiql-art`) expose the same
//! key → `u64` interface; this crate owns that interface so everything
//! above the trees — the benchmark harness, the sharded facade, examples,
//! tests — is written once against [`ConcurrentIndex`] and runs unmodified
//! over any index (or composition of indexes).
//!
//! The trait is generic over the key type through [`IndexKey`], with
//! `u64` as the default parameter (so `dyn ConcurrentIndex` and every
//! pre-existing `I: ConcurrentIndex` bound still mean the fixed-width
//! integer index) and [`Bytes`] as the variable-length byte-string key
//! real workloads use. Range access is a **streaming** iterator
//! ([`ConcurrentIndex::range`]): implementations snapshot one leaf (or
//! node chunk) per refill under a validated optimistic read and re-descend
//! through the restart ladder on version conflicts, so a scan never holds
//! a lock while its consumer runs.
//!
//! The workspace layering is strictly one-directional:
//!
//! ```text
//! optiql (core: locks + olc protocol)
//!    └── optiql-index-api (this crate: the trait + key abstraction)
//!           ├── optiql-btree, optiql-art (indexes implement it)
//!           ├── optiql-sharded (facade: ShardedIndex<I: ConcurrentIndex<K>>)
//!           └── optiql-harness / optiql-bench (consumers)
//! ```
//!
//! Index crates implement the trait with [`impl_concurrent_index!`], which
//! delegates every method to the inherent methods of the same names —
//! keeping the two impl blocks from drifting apart, as the previous
//! hand-rolled copies in the harness did.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod key;

use std::ops::Bound;

pub use key::{bslot, BoxedBytes, Bytes, IndexKey};
pub use optiql::olc::IndexStats;
pub use optiql_reclaim::Handle as ReclaimHandle;

/// One entry a range iterator yields.
pub type RangeItem<K> = (K, u64);

/// The boxed iterator behind [`RangeIter`] (a named alias so generic
/// signatures stay readable).
pub type BoxedRangeIter<'a, K> = Box<dyn Iterator<Item = RangeItem<K>> + Send + 'a>;

/// A streaming range scan over an index, in ascending key order.
///
/// Entries are produced lazily: each implementation snapshots a bounded
/// chunk (a B+-tree leaf, an ART subtree slice, one head per shard)
/// under a validated optimistic read, yields it, and re-descends for the
/// next chunk — so no lock is held while the consumer runs, and a
/// version conflict costs one chunk's re-read, not the whole scan.
///
/// Consistency contract (see DESIGN.md): within one yielded chunk the
/// entries are an atomic snapshot; across chunks the scan is a
/// lock-free traversal — every key present for the whole scan is
/// yielded exactly once, keys inserted or removed concurrently may or
/// may not appear, and no key is ever yielded twice.
pub struct RangeIter<'a, K = u64> {
    inner: BoxedRangeIter<'a, K>,
}

impl<'a, K: 'a> RangeIter<'a, K> {
    /// Wrap a concrete iterator.
    pub fn new(inner: impl Iterator<Item = RangeItem<K>> + Send + 'a) -> Self {
        RangeIter {
            inner: Box::new(inner),
        }
    }

    /// An iterator over nothing (degenerate bounds).
    pub fn empty() -> Self {
        RangeIter {
            inner: Box::new(std::iter::empty()),
        }
    }
}

impl<K> Iterator for RangeIter<'_, K> {
    type Item = RangeItem<K>;

    #[inline]
    fn next(&mut self) -> Option<RangeItem<K>> {
        self.inner.next()
    }
}

/// True when the interval described by `start`/`end` can contain a key
/// (`false` lets implementations return [`RangeIter::empty`] without
/// descending — and keeps `BTreeMap::range`'s bound panics unreachable).
pub fn bounds_nonempty<K: Ord>(start: &Bound<K>, end: &Bound<K>) -> bool {
    match (start, end) {
        (Bound::Unbounded, _) | (_, Bound::Unbounded) => true,
        (Bound::Included(s), Bound::Included(e)) => s <= e,
        (Bound::Included(s), Bound::Excluded(e))
        | (Bound::Excluded(s), Bound::Included(e))
        | (Bound::Excluded(s), Bound::Excluded(e)) => s < e,
    }
}

/// True when `k` satisfies the lower bound `start`.
#[inline]
pub fn key_above_start<K: Ord>(k: &K, start: &Bound<K>) -> bool {
    match start {
        Bound::Unbounded => true,
        Bound::Included(s) => k >= s,
        Bound::Excluded(s) => k > s,
    }
}

/// True when `k` satisfies the upper bound `end`.
#[inline]
pub fn key_below_end<K: Ord>(k: &K, end: &Bound<K>) -> bool {
    match end {
        Bound::Unbounded => true,
        Bound::Included(e) => k <= e,
        Bound::Excluded(e) => k < e,
    }
}

/// A concurrent ordered index from keys `K` to `u64` values: the
/// interface both paper indexes (and any facade over them) expose. The
/// default key type is `u64`, so `ConcurrentIndex` written without a
/// parameter — including every pre-generic call site and trait object —
/// is the fixed-width integer index.
///
/// All methods take `&self`: implementations synchronize internally (the
/// whole point of the lock protocols underneath). `scan_count` is
/// **required** — an index without range support must say so explicitly
/// instead of silently reporting zero, which previously made YCSB-E
/// numbers look plausible while scanning nothing. [`range`] is the
/// streaming successor: `scan_count` answers "how many", `range` yields
/// the entries without materializing them.
///
/// [`range`]: ConcurrentIndex::range
pub trait ConcurrentIndex<K: IndexKey = u64>: Send + Sync {
    /// Insert or overwrite a key; returns the previous value if present.
    fn insert(&self, k: K, v: u64) -> Option<u64>;

    /// Update an existing key; returns the previous value, `None` if the
    /// key is absent (no insert happens).
    fn update(&self, k: K, v: u64) -> Option<u64>;

    /// Point lookup.
    fn lookup(&self, k: K) -> Option<u64>;

    /// Remove a key; returns the removed value.
    fn remove(&self, k: K) -> Option<u64>;

    /// Range scan: number of entries with keys ≥ `start`, up to `limit`
    /// (YCSB-E style).
    fn scan_count(&self, start: K, limit: usize) -> usize;

    /// Stream the entries whose keys fall within `start..end`, in
    /// ascending key order, without materializing the result set. See
    /// [`RangeIter`] for the concurrency contract.
    fn range(&self, start: Bound<K>, end: Bound<K>) -> RangeIter<'_, K>;

    /// Number of entries (maintained counter; exact when quiescent).
    fn len(&self) -> usize;

    /// True iff the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unified operation/restart accounting
    /// ([`optiql::olc::IndexStats`]). Composite indexes aggregate their
    /// parts; plain wrappers may return the default.
    fn index_stats(&self) -> IndexStats {
        IndexStats::default()
    }

    /// Batched point lookups: `result[i] == self.lookup(keys[i])`, order
    /// preserved.
    ///
    /// The default is a scalar loop, so every implementation keeps
    /// working; the paper indexes override it with a software-pipelined
    /// descent that interleaves ~8 lookups round-robin, prefetching each
    /// op's next node before switching to the others, so one batch keeps
    /// several cache misses outstanding (memory-level parallelism).
    fn multi_lookup(&self, keys: &[K]) -> Vec<Option<u64>> {
        keys.iter().map(|k| self.lookup(k.clone())).collect()
    }

    /// Batched inserts, equivalent to applying `pairs` **in order**:
    /// `result[i]` is what `self.insert(pairs[i].0, pairs[i].1)` would
    /// have returned at that point in the sequence (so a duplicate key
    /// later in the batch sees the value written earlier in the batch).
    ///
    /// Default is a scalar loop; pipelined overrides must preserve the
    /// in-order semantics.
    fn multi_insert(&self, pairs: &[(K, u64)]) -> Vec<Option<u64>> {
        pairs
            .iter()
            .map(|(k, v)| self.insert(k.clone(), *v))
            .collect()
    }

    /// The epoch-reclamation domain guarding this index's node frees, if
    /// it has exactly one. A composing layer (sharded facade, batched
    /// workload driver) holds one pin across a whole operation group so
    /// the per-operation pins inside become nested depth increments —
    /// no epoch publication, no store→load fence — amortizing the pin
    /// cost over the group.
    ///
    /// `None` (the default) means "no single domain": either the index
    /// does not reclaim memory at all (e.g. the model), or it spans
    /// several domains (e.g. a sharded facade with per-shard domains),
    /// in which case callers amortize per shard instead.
    fn reclaim_handle(&self) -> Option<ReclaimHandle> {
        None
    }
}

/// Implement [`ConcurrentIndex`] for an index type by delegating to its
/// inherent methods (`insert`, `update`, `lookup`, `remove`, `scan`,
/// `range`, `len`, `index_stats`).
///
/// `scan_count` delegates to the inherent `scan(start, limit)` returning
/// `Vec<(K, u64)>` — both trees materialize those entries, so the count
/// is honest by construction. `range` delegates to the inherent
/// streaming implementation.
///
/// ```ignore
/// optiql_index_api::impl_concurrent_index! {
///     impl [K: IndexKey, L: optiql::IndexLock] ConcurrentIndex<K>
///         for crate::ArtTree<L, K>
/// }
/// ```
#[macro_export]
macro_rules! impl_concurrent_index {
    (impl [$($generics:tt)*] ConcurrentIndex<$k:ty> for $ty:ty) => {
        impl<$($generics)*> $crate::ConcurrentIndex<$k> for $ty {
            #[inline]
            fn insert(&self, k: $k, v: u64) -> Option<u64> {
                <$ty>::insert(self, k, v)
            }
            #[inline]
            fn update(&self, k: $k, v: u64) -> Option<u64> {
                <$ty>::update(self, k, v)
            }
            #[inline]
            fn lookup(&self, k: $k) -> Option<u64> {
                <$ty>::lookup(self, k)
            }
            #[inline]
            fn remove(&self, k: $k) -> Option<u64> {
                <$ty>::remove(self, k)
            }
            #[inline]
            fn scan_count(&self, start: $k, limit: usize) -> usize {
                <$ty>::scan(self, start, limit).len()
            }
            #[inline]
            fn range(
                &self,
                start: ::std::ops::Bound<$k>,
                end: ::std::ops::Bound<$k>,
            ) -> $crate::RangeIter<'_, $k> {
                <$ty>::range(self, start, end)
            }
            #[inline]
            fn len(&self) -> usize {
                <$ty>::len(self)
            }
            #[inline]
            fn index_stats(&self) -> $crate::IndexStats {
                <$ty>::index_stats(self)
            }
            #[inline]
            fn multi_lookup(&self, keys: &[$k]) -> Vec<Option<u64>> {
                <$ty>::multi_lookup(self, keys)
            }
            #[inline]
            fn multi_insert(&self, pairs: &[($k, u64)]) -> Vec<Option<u64>> {
                <$ty>::multi_insert(self, pairs)
            }
            #[inline]
            fn reclaim_handle(&self) -> Option<$crate::ReclaimHandle> {
                <$ty>::reclaim_handle(self)
            }
        }
    };
}

/// Delegate every trait method through a pointer-like wrapper: a shared
/// reference or an `Arc` of an index is itself an index, so drivers and
/// composing wrappers (recorders, chaos layers, shard facades) can hold
/// `Arc<dyn ConcurrentIndex>` without a bespoke newtype each.
macro_rules! impl_deref_index {
    ($(#[$meta:meta])* impl [$($generics:tt)*] for $ty:ty) => {
        $(#[$meta])*
        impl<$($generics)*> ConcurrentIndex<K> for $ty {
            #[inline]
            fn insert(&self, k: K, v: u64) -> Option<u64> {
                (**self).insert(k, v)
            }
            #[inline]
            fn update(&self, k: K, v: u64) -> Option<u64> {
                (**self).update(k, v)
            }
            #[inline]
            fn lookup(&self, k: K) -> Option<u64> {
                (**self).lookup(k)
            }
            #[inline]
            fn remove(&self, k: K) -> Option<u64> {
                (**self).remove(k)
            }
            #[inline]
            fn scan_count(&self, start: K, limit: usize) -> usize {
                (**self).scan_count(start, limit)
            }
            #[inline]
            fn range(&self, start: Bound<K>, end: Bound<K>) -> RangeIter<'_, K> {
                (**self).range(start, end)
            }
            #[inline]
            fn len(&self) -> usize {
                (**self).len()
            }
            #[inline]
            fn is_empty(&self) -> bool {
                (**self).is_empty()
            }
            #[inline]
            fn index_stats(&self) -> IndexStats {
                (**self).index_stats()
            }
            #[inline]
            fn multi_lookup(&self, keys: &[K]) -> Vec<Option<u64>> {
                (**self).multi_lookup(keys)
            }
            #[inline]
            fn multi_insert(&self, pairs: &[(K, u64)]) -> Vec<Option<u64>> {
                (**self).multi_insert(pairs)
            }
            #[inline]
            fn reclaim_handle(&self) -> Option<ReclaimHandle> {
                (**self).reclaim_handle()
            }
        }
    };
}

impl_deref_index! {
    /// A shared reference to an index is an index.
    impl ['a, K: IndexKey, T: ConcurrentIndex<K> + ?Sized] for &'a T
}
impl_deref_index! {
    /// An `Arc` of an index (including `Arc<dyn ConcurrentIndex>`) is an
    /// index.
    impl [K: IndexKey, T: ConcurrentIndex<K> + ?Sized] for std::sync::Arc<T>
}
impl_deref_index! {
    /// A box of an index is an index.
    impl [K: IndexKey, T: ConcurrentIndex<K> + ?Sized] for Box<T>
}

/// Reference implementation for models and tests: a mutex-protected
/// `BTreeMap`. Sequentially consistent, obviously correct, slow — exactly
/// what a differential test wants on the other side of the diff.
pub mod model {
    use super::{bounds_nonempty, ConcurrentIndex, IndexKey, RangeIter};
    use std::collections::BTreeMap;
    use std::ops::Bound;
    use std::sync::Mutex;

    /// `Mutex<BTreeMap>` as a [`ConcurrentIndex`], generic over the same
    /// key types as the real indexes.
    #[derive(Debug)]
    pub struct ModelIndex<K: IndexKey = u64> {
        map: Mutex<BTreeMap<K, u64>>,
    }

    impl<K: IndexKey> Default for ModelIndex<K> {
        fn default() -> Self {
            ModelIndex {
                map: Mutex::new(BTreeMap::new()),
            }
        }
    }

    impl<K: IndexKey> ModelIndex<K> {
        /// An empty model.
        pub fn new() -> Self {
            Self::default()
        }

        /// Entries with keys ≥ `start`, up to `limit`, in key order.
        pub fn scan(&self, start: K, limit: usize) -> Vec<(K, u64)> {
            self.map
                .lock()
                .unwrap()
                .range(start..)
                .take(limit)
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        }

        /// Atomic snapshot of the entries within `start..end`, in key
        /// order (the model-side answer `range` is diffed against).
        pub fn scan_bounds(&self, start: Bound<K>, end: Bound<K>) -> Vec<(K, u64)> {
            if !bounds_nonempty(&start, &end) {
                return Vec::new();
            }
            self.map
                .lock()
                .unwrap()
                .range((start, end))
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        }
    }

    impl<K: IndexKey> ConcurrentIndex<K> for ModelIndex<K> {
        fn insert(&self, k: K, v: u64) -> Option<u64> {
            self.map.lock().unwrap().insert(k, v)
        }
        fn update(&self, k: K, v: u64) -> Option<u64> {
            let mut m = self.map.lock().unwrap();
            m.get_mut(&k).map(|slot| std::mem::replace(slot, v))
        }
        fn lookup(&self, k: K) -> Option<u64> {
            self.map.lock().unwrap().get(&k).copied()
        }
        fn remove(&self, k: K) -> Option<u64> {
            self.map.lock().unwrap().remove(&k)
        }
        fn scan_count(&self, start: K, limit: usize) -> usize {
            self.scan(start, limit).len()
        }
        /// The model "streams" an atomic snapshot: simplest correct
        /// behavior, and the strongest consistency the contract allows —
        /// a real tree's chunked iteration must produce the same entries
        /// whenever the index is quiescent.
        fn range(&self, start: Bound<K>, end: Bound<K>) -> RangeIter<'_, K> {
            RangeIter::new(self.scan_bounds(start, end).into_iter())
        }
        fn len(&self) -> usize {
            self.map.lock().unwrap().len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::model::ModelIndex;
    use super::*;

    #[test]
    fn model_index_implements_the_trait_honestly() {
        let m = ModelIndex::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.update(2, 20), None, "update never inserts");
        assert_eq!(m.lookup(1), Some(11));
        assert_eq!(m.len(), 1);
        m.insert(5, 50);
        m.insert(3, 30);
        assert_eq!(m.scan_count(2, 10), 2);
        assert_eq!(m.scan_count(0, 2), 2, "limit caps the count");
        assert_eq!(m.remove(1), Some(11));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.index_stats(), IndexStats::default());
    }

    #[test]
    fn default_multi_methods_match_scalar_semantics() {
        let m = ModelIndex::new();
        // Duplicate key within the batch: the second insert must observe
        // the first one's value, and the lookup batch must be ordered.
        let inserted = m.multi_insert(&[(1, 10), (2, 20), (1, 11)]);
        assert_eq!(inserted, vec![None, None, Some(10)]);
        let got = m.multi_lookup(&[2, 9, 1, 1]);
        assert_eq!(got, vec![Some(20), None, Some(11), Some(11)]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn trait_objects_work() {
        let m = ModelIndex::new();
        let dynref: &dyn ConcurrentIndex = &m;
        dynref.insert(7, 70);
        assert_eq!(dynref.lookup(7), Some(70));
        assert!(!dynref.is_empty());
        assert_eq!(
            dynref.range(Bound::Unbounded, Bound::Unbounded).count(),
            1,
            "range must stay object-safe"
        );
    }

    #[test]
    fn pointer_wrappers_are_indexes_too() {
        let arc: std::sync::Arc<dyn ConcurrentIndex> = std::sync::Arc::new(ModelIndex::new());
        arc.insert(1, 10);
        assert_eq!(ConcurrentIndex::lookup(&arc, 1), Some(10));
        let by_ref: &dyn ConcurrentIndex = &arc;
        assert_eq!(by_ref.len(), 1);
        assert_eq!(by_ref.range(Bound::Unbounded, Bound::Unbounded).count(), 1);
        let boxed: Box<dyn ConcurrentIndex> = Box::new(ModelIndex::new());
        assert_eq!(
            boxed.multi_insert(&[(2, 20), (2, 21)]),
            vec![None, Some(20)]
        );
        assert_eq!(boxed.scan_count(0, 10), 1);
    }

    #[test]
    fn model_range_respects_every_bound_shape() {
        let m = ModelIndex::new();
        for k in [1u64, 3, 5, 7, 9] {
            m.insert(k, k * 10);
        }
        let collect = |s, e| -> Vec<u64> { m.range(s, e).map(|(k, _)| k).collect() };
        assert_eq!(
            collect(Bound::Unbounded, Bound::Unbounded),
            vec![1, 3, 5, 7, 9]
        );
        assert_eq!(
            collect(Bound::Included(3), Bound::Excluded(9)),
            vec![3, 5, 7]
        );
        assert_eq!(collect(Bound::Excluded(3), Bound::Included(7)), vec![5, 7]);
        assert_eq!(collect(Bound::Included(4), Bound::Included(4)), vec![]);
        // Degenerate bounds must not panic (BTreeMap::range would).
        assert_eq!(collect(Bound::Included(9), Bound::Included(1)), vec![]);
        assert_eq!(collect(Bound::Excluded(5), Bound::Excluded(5)), vec![]);
    }

    #[test]
    fn model_index_works_over_byte_keys() {
        let m: ModelIndex<Bytes> = ModelIndex::new();
        m.insert(Bytes::from("b"), 2);
        m.insert(Bytes::from("a"), 1);
        m.insert(Bytes::from(&b"a\x00"[..]), 15);
        let keys: Vec<Bytes> = m
            .range(Bound::Unbounded, Bound::Unbounded)
            .map(|(k, _)| k)
            .collect();
        assert_eq!(
            keys,
            vec![
                Bytes::from("a"),
                Bytes::from(&b"a\x00"[..]),
                Bytes::from("b")
            ]
        );
        assert_eq!(m.scan_count(Bytes::from("a\x00"), 10), 2);
        assert_eq!(
            m.multi_lookup(&[Bytes::from("b"), Bytes::from("c")]),
            vec![Some(2), None]
        );
    }

    #[test]
    fn bound_helpers_agree_with_btreemap() {
        assert!(bounds_nonempty(&Bound::Included(1), &Bound::Included(1)));
        assert!(!bounds_nonempty(&Bound::Excluded(1), &Bound::Excluded(1)));
        assert!(!bounds_nonempty(&Bound::Included(2), &Bound::Included(1)));
        assert!(bounds_nonempty::<u64>(&Bound::Unbounded, &Bound::Unbounded));
        assert!(key_above_start(&5, &Bound::Excluded(4)));
        assert!(!key_above_start(&4, &Bound::Excluded(4)));
        assert!(key_below_end(&5, &Bound::Included(5)));
        assert!(!key_below_end(&5, &Bound::Excluded(5)));
    }
}
