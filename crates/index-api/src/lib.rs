//! # optiql-index-api — the index-agnostic concurrent-index surface
//!
//! Both paper indexes (`optiql-btree`, `optiql-art`) expose the same
//! `u64 → u64` interface; this crate owns that interface so everything
//! above the trees — the benchmark harness, the sharded facade, examples,
//! tests — is written once against [`ConcurrentIndex`] and runs unmodified
//! over any index (or composition of indexes).
//!
//! The workspace layering is strictly one-directional:
//!
//! ```text
//! optiql (core: locks + olc protocol)
//!    └── optiql-index-api (this crate: the trait)
//!           ├── optiql-btree, optiql-art (indexes implement it)
//!           ├── optiql-sharded (facade: ShardedIndex<I: ConcurrentIndex>)
//!           └── optiql-harness / optiql-bench (consumers)
//! ```
//!
//! Index crates implement the trait with [`impl_concurrent_index!`], which
//! delegates every method to the inherent methods of the same names —
//! keeping the two impl blocks from drifting apart, as the previous
//! hand-rolled copies in the harness did.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use optiql::olc::IndexStats;
pub use optiql_reclaim::Handle as ReclaimHandle;

/// A concurrent `u64 → u64` index: the interface both paper indexes (and
/// any facade over them) expose.
///
/// All methods take `&self`: implementations synchronize internally (the
/// whole point of the lock protocols underneath). `scan_count` is
/// **required** — an index without range support must say so explicitly
/// instead of silently reporting zero, which previously made YCSB-E
/// numbers look plausible while scanning nothing.
pub trait ConcurrentIndex: Send + Sync {
    /// Insert or overwrite a key; returns the previous value if present.
    fn insert(&self, k: u64, v: u64) -> Option<u64>;

    /// Update an existing key; returns the previous value, `None` if the
    /// key is absent (no insert happens).
    fn update(&self, k: u64, v: u64) -> Option<u64>;

    /// Point lookup.
    fn lookup(&self, k: u64) -> Option<u64>;

    /// Remove a key; returns the removed value.
    fn remove(&self, k: u64) -> Option<u64>;

    /// Range scan: number of entries with keys ≥ `start`, up to `limit`
    /// (YCSB-E style).
    fn scan_count(&self, start: u64, limit: usize) -> usize;

    /// Number of entries (maintained counter; exact when quiescent).
    fn len(&self) -> usize;

    /// True iff the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unified operation/restart accounting
    /// ([`optiql::olc::IndexStats`]). Composite indexes aggregate their
    /// parts; plain wrappers may return the default.
    fn index_stats(&self) -> IndexStats {
        IndexStats::default()
    }

    /// Batched point lookups: `result[i] == self.lookup(keys[i])`, order
    /// preserved.
    ///
    /// The default is a scalar loop, so every implementation keeps
    /// working; the paper indexes override it with a software-pipelined
    /// descent that interleaves ~8 lookups round-robin, prefetching each
    /// op's next node before switching to the others, so one batch keeps
    /// several cache misses outstanding (memory-level parallelism).
    fn multi_lookup(&self, keys: &[u64]) -> Vec<Option<u64>> {
        keys.iter().map(|&k| self.lookup(k)).collect()
    }

    /// Batched inserts, equivalent to applying `pairs` **in order**:
    /// `result[i]` is what `self.insert(pairs[i].0, pairs[i].1)` would
    /// have returned at that point in the sequence (so a duplicate key
    /// later in the batch sees the value written earlier in the batch).
    ///
    /// Default is a scalar loop; pipelined overrides must preserve the
    /// in-order semantics.
    fn multi_insert(&self, pairs: &[(u64, u64)]) -> Vec<Option<u64>> {
        pairs.iter().map(|&(k, v)| self.insert(k, v)).collect()
    }

    /// The epoch-reclamation domain guarding this index's node frees, if
    /// it has exactly one. A composing layer (sharded facade, batched
    /// workload driver) holds one pin across a whole operation group so
    /// the per-operation pins inside become nested depth increments —
    /// no epoch publication, no store→load fence — amortizing the pin
    /// cost over the group.
    ///
    /// `None` (the default) means "no single domain": either the index
    /// does not reclaim memory at all (e.g. the model), or it spans
    /// several domains (e.g. a sharded facade with per-shard domains),
    /// in which case callers amortize per shard instead.
    fn reclaim_handle(&self) -> Option<ReclaimHandle> {
        None
    }
}

/// Implement [`ConcurrentIndex`] for an index type by delegating to its
/// inherent methods (`insert`, `update`, `lookup`, `remove`, `scan`,
/// `len`, `index_stats`).
///
/// `scan_count` delegates to the inherent `scan(start, limit)` returning
/// `Vec<(u64, u64)>` — both trees already materialize the entries, so the
/// count is honest by construction.
///
/// ```ignore
/// optiql_index_api::impl_concurrent_index! {
///     impl [L: optiql::IndexLock] for crate::ArtTree<L>
/// }
/// ```
#[macro_export]
macro_rules! impl_concurrent_index {
    (impl [$($generics:tt)*] for $ty:ty) => {
        impl<$($generics)*> $crate::ConcurrentIndex for $ty {
            #[inline]
            fn insert(&self, k: u64, v: u64) -> Option<u64> {
                <$ty>::insert(self, k, v)
            }
            #[inline]
            fn update(&self, k: u64, v: u64) -> Option<u64> {
                <$ty>::update(self, k, v)
            }
            #[inline]
            fn lookup(&self, k: u64) -> Option<u64> {
                <$ty>::lookup(self, k)
            }
            #[inline]
            fn remove(&self, k: u64) -> Option<u64> {
                <$ty>::remove(self, k)
            }
            #[inline]
            fn scan_count(&self, start: u64, limit: usize) -> usize {
                <$ty>::scan(self, start, limit).len()
            }
            #[inline]
            fn len(&self) -> usize {
                <$ty>::len(self)
            }
            #[inline]
            fn index_stats(&self) -> $crate::IndexStats {
                <$ty>::index_stats(self)
            }
            #[inline]
            fn multi_lookup(&self, keys: &[u64]) -> Vec<Option<u64>> {
                <$ty>::multi_lookup(self, keys)
            }
            #[inline]
            fn multi_insert(&self, pairs: &[(u64, u64)]) -> Vec<Option<u64>> {
                <$ty>::multi_insert(self, pairs)
            }
            #[inline]
            fn reclaim_handle(&self) -> Option<$crate::ReclaimHandle> {
                <$ty>::reclaim_handle(self)
            }
        }
    };
}

/// Delegate every trait method through a pointer-like wrapper: a shared
/// reference or an `Arc` of an index is itself an index, so drivers and
/// composing wrappers (recorders, chaos layers, shard facades) can hold
/// `Arc<dyn ConcurrentIndex>` without a bespoke newtype each.
macro_rules! impl_deref_index {
    ($(#[$meta:meta])* impl [$($generics:tt)*] for $ty:ty) => {
        $(#[$meta])*
        impl<$($generics)*> ConcurrentIndex for $ty {
            #[inline]
            fn insert(&self, k: u64, v: u64) -> Option<u64> {
                (**self).insert(k, v)
            }
            #[inline]
            fn update(&self, k: u64, v: u64) -> Option<u64> {
                (**self).update(k, v)
            }
            #[inline]
            fn lookup(&self, k: u64) -> Option<u64> {
                (**self).lookup(k)
            }
            #[inline]
            fn remove(&self, k: u64) -> Option<u64> {
                (**self).remove(k)
            }
            #[inline]
            fn scan_count(&self, start: u64, limit: usize) -> usize {
                (**self).scan_count(start, limit)
            }
            #[inline]
            fn len(&self) -> usize {
                (**self).len()
            }
            #[inline]
            fn is_empty(&self) -> bool {
                (**self).is_empty()
            }
            #[inline]
            fn index_stats(&self) -> IndexStats {
                (**self).index_stats()
            }
            #[inline]
            fn multi_lookup(&self, keys: &[u64]) -> Vec<Option<u64>> {
                (**self).multi_lookup(keys)
            }
            #[inline]
            fn multi_insert(&self, pairs: &[(u64, u64)]) -> Vec<Option<u64>> {
                (**self).multi_insert(pairs)
            }
            #[inline]
            fn reclaim_handle(&self) -> Option<ReclaimHandle> {
                (**self).reclaim_handle()
            }
        }
    };
}

impl_deref_index! {
    /// A shared reference to an index is an index.
    impl ['a, T: ConcurrentIndex + ?Sized] for &'a T
}
impl_deref_index! {
    /// An `Arc` of an index (including `Arc<dyn ConcurrentIndex>`) is an
    /// index.
    impl [T: ConcurrentIndex + ?Sized] for std::sync::Arc<T>
}
impl_deref_index! {
    /// A box of an index is an index.
    impl [T: ConcurrentIndex + ?Sized] for Box<T>
}

/// Reference implementation for models and tests: a mutex-protected
/// `BTreeMap`. Sequentially consistent, obviously correct, slow — exactly
/// what a differential test wants on the other side of the diff.
pub mod model {
    use super::ConcurrentIndex;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// `Mutex<BTreeMap>` as a [`ConcurrentIndex`].
    #[derive(Debug, Default)]
    pub struct ModelIndex {
        map: Mutex<BTreeMap<u64, u64>>,
    }

    impl ModelIndex {
        /// An empty model.
        pub fn new() -> Self {
            Self::default()
        }

        /// Entries with keys ≥ `start`, up to `limit`, in key order.
        pub fn scan(&self, start: u64, limit: usize) -> Vec<(u64, u64)> {
            self.map
                .lock()
                .unwrap()
                .range(start..)
                .take(limit)
                .map(|(k, v)| (*k, *v))
                .collect()
        }
    }

    impl ConcurrentIndex for ModelIndex {
        fn insert(&self, k: u64, v: u64) -> Option<u64> {
            self.map.lock().unwrap().insert(k, v)
        }
        fn update(&self, k: u64, v: u64) -> Option<u64> {
            let mut m = self.map.lock().unwrap();
            m.get_mut(&k).map(|slot| std::mem::replace(slot, v))
        }
        fn lookup(&self, k: u64) -> Option<u64> {
            self.map.lock().unwrap().get(&k).copied()
        }
        fn remove(&self, k: u64) -> Option<u64> {
            self.map.lock().unwrap().remove(&k)
        }
        fn scan_count(&self, start: u64, limit: usize) -> usize {
            self.scan(start, limit).len()
        }
        fn len(&self) -> usize {
            self.map.lock().unwrap().len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::model::ModelIndex;
    use super::*;

    #[test]
    fn model_index_implements_the_trait_honestly() {
        let m = ModelIndex::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.update(2, 20), None, "update never inserts");
        assert_eq!(m.lookup(1), Some(11));
        assert_eq!(m.len(), 1);
        m.insert(5, 50);
        m.insert(3, 30);
        assert_eq!(m.scan_count(2, 10), 2);
        assert_eq!(m.scan_count(0, 2), 2, "limit caps the count");
        assert_eq!(m.remove(1), Some(11));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.index_stats(), IndexStats::default());
    }

    #[test]
    fn default_multi_methods_match_scalar_semantics() {
        let m = ModelIndex::new();
        // Duplicate key within the batch: the second insert must observe
        // the first one's value, and the lookup batch must be ordered.
        let inserted = m.multi_insert(&[(1, 10), (2, 20), (1, 11)]);
        assert_eq!(inserted, vec![None, None, Some(10)]);
        let got = m.multi_lookup(&[2, 9, 1, 1]);
        assert_eq!(got, vec![Some(20), None, Some(11), Some(11)]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn trait_objects_work() {
        let m = ModelIndex::new();
        let dynref: &dyn ConcurrentIndex = &m;
        dynref.insert(7, 70);
        assert_eq!(dynref.lookup(7), Some(70));
        assert!(!dynref.is_empty());
    }

    #[test]
    fn pointer_wrappers_are_indexes_too() {
        let arc: std::sync::Arc<dyn ConcurrentIndex> = std::sync::Arc::new(ModelIndex::new());
        arc.insert(1, 10);
        assert_eq!(ConcurrentIndex::lookup(&arc, 1), Some(10));
        let by_ref: &dyn ConcurrentIndex = &arc;
        assert_eq!(by_ref.len(), 1);
        let boxed: Box<dyn ConcurrentIndex> = Box::new(ModelIndex::new());
        assert_eq!(
            boxed.multi_insert(&[(2, 20), (2, 21)]),
            vec![None, Some(20)]
        );
        assert_eq!(boxed.scan_count(0, 10), 1);
    }
}
