//! The key abstraction: [`IndexKey`] makes every index in the workspace
//! generic over its key type while keeping the fixed-width `u64` hot
//! path exactly as fast as it was before the generalization.
//!
//! Two representations have to meet:
//!
//! * the B+-tree stores keys in fixed `[AtomicU64]` node arrays so its
//!   branchless search kernel can stream them — a variable-length key
//!   must therefore fit in a 64-bit **slot word** (the key itself when
//!   it is a `u64`, a pointer to a heap-owned key otherwise);
//! * the ART consumes keys as **digit strings** — `u64` keys as their 8
//!   big-endian bytes, byte-string keys through the order-preserving,
//!   prefix-free escape encoding in [`enc`].
//!
//! [`IndexKey`] carries both views plus the routing hint the sharded
//! facade partitions by. Exactly two implementations exist: `u64`
//! (inline slots, fixed 8-byte digits, `Relaxed` slot ordering — the
//! monomorphized tree code is byte-for-byte the pre-generic code) and
//! [`Bytes`] (boxed slots published with `Release`/`Acquire`, escape
//! encoding).

use std::cmp::Ordering;
use std::sync::atomic::Ordering as MemOrd;

use optiql_reclaim::Guard;

/// Order-preserving, prefix-free byte-string encoding.
///
/// Content bytes are escaped so that `0x00` never appears inside an
/// encoding, then a single `0x00` terminator is appended:
///
/// ```text
/// 0x00 → 0x01 0x02      0x01 → 0x01 0x03      b ≥ 0x02 → b
/// terminator: 0x00
/// ```
///
/// Two properties follow, and both are load-bearing for the indexes:
///
/// * **prefix-free** — an encoding's only `0x00` is its final byte, so
///   no encoding is a proper prefix of another. The ART requires this:
///   a stored key must terminate at a leaf, never inside another key's
///   digit path.
/// * **order-preserving** — for raw strings `a < b` (lexicographic),
///   `enc(a) < enc(b)`. If `a` is a proper prefix of `b`, `enc(a)`
///   diverges with its terminator `0x00` against a content byte
///   `≥ 0x01`. Otherwise the first differing raw pair `(x, y)` with
///   `x < y` maps to escape pairs that preserve the order case by case
///   (`0x00 → 01 02` and `0x01 → 01 03` both start below any unescaped
///   `b ≥ 2`, and `01 02 < 01 03`).
///
/// The functions are pure and allocation-explicit so the module can run
/// under Miri as-is.
pub mod enc {
    /// Escape lead byte.
    pub const ESC: u8 = 0x01;
    /// `ESC` followed by this encodes a raw `0x00`.
    pub const ESC_ZERO: u8 = 0x02;
    /// `ESC` followed by this encodes a raw `0x01`.
    pub const ESC_ONE: u8 = 0x03;
    /// Terminator byte; never appears inside an encoding.
    pub const TERM: u8 = 0x00;

    /// Append the encoding of `raw` (escaped content + terminator) to
    /// `out`.
    pub fn encode_into(raw: &[u8], out: &mut Vec<u8>) {
        out.reserve(raw.len() + 1);
        for &b in raw {
            match b {
                0x00 => out.extend_from_slice(&[ESC, ESC_ZERO]),
                0x01 => out.extend_from_slice(&[ESC, ESC_ONE]),
                _ => out.push(b),
            }
        }
        out.push(TERM);
    }

    /// Decode one full encoding (as produced by [`encode_into`]) back to
    /// the raw bytes. Returns `None` on malformed input: missing or
    /// early terminator, dangling escape, unknown escape payload.
    pub fn decode(encoded: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(encoded.len().saturating_sub(1));
        let mut i = 0;
        loop {
            match *encoded.get(i)? {
                TERM => {
                    // The terminator must be the final byte.
                    return (i + 1 == encoded.len()).then_some(out);
                }
                ESC => {
                    match *encoded.get(i + 1)? {
                        ESC_ZERO => out.push(0x00),
                        ESC_ONE => out.push(0x01),
                        _ => return None,
                    }
                    i += 2;
                }
                b => {
                    out.push(b);
                    i += 1;
                }
            }
        }
    }

    /// Encoded length of `raw` (content with escapes, plus terminator).
    pub fn encoded_len(raw: &[u8]) -> usize {
        raw.iter().filter(|&&b| b <= 0x01).count() + raw.len() + 1
    }
}

/// A key type the index stack can store, search, scan and shard.
///
/// # Safety
///
/// The slot-word methods form a manual ownership protocol the B+-tree
/// holds raw `u64` words against; implementations must uphold it or the
/// tree dereferences garbage:
///
/// * [`into_slot`](Self::into_slot) transfers ownership of the key into
///   the word; every slot produced by it (or by
///   [`slot_clone`](Self::slot_clone)) must stay valid to read through
///   [`slot_key`](Self::slot_key) / [`cmp_slot`](Self::cmp_slot) until
///   released by exactly one [`slot_free`](Self::slot_free) or
///   [`slot_retire`](Self::slot_retire);
/// * for pointer-backed keys the pointee must never be mutated after
///   `into_slot`, so concurrent readers racing a release (but protected
///   by the epoch the retire went through) always observe a fully
///   initialized, immutable key;
/// * `SLOT_LOAD`/`SLOT_STORE` must be strong enough that a reader which
///   loads a slot word published by another thread's store observes the
///   pointee's initialization (`Relaxed` is only sound for inline keys).
pub unsafe trait IndexKey:
    Ord + Eq + Clone + Send + Sync + std::fmt::Debug + 'static
{
    /// True when the key lives inline in the slot word (no heap, no
    /// pointer chase; the tree's fixed-width fast path).
    const INLINE: bool;

    /// Memory ordering for loads of key-slot words. `Relaxed` for
    /// inline keys; `Acquire` for pointer slots so the pointee's bytes
    /// are visible.
    const SLOT_LOAD: MemOrd;

    /// Memory ordering for stores of key-slot words. `Relaxed` for
    /// inline keys; `Release` for pointer slots.
    const SLOT_STORE: MemOrd;

    /// The digit-string view: what [`encode`](Self::encode) yields.
    type Enc: AsRef<[u8]>;

    /// Encode into an order-preserving, prefix-free digit string (the
    /// ART's descent alphabet). For `u64` this is the 8 big-endian
    /// bytes on the stack; for [`Bytes`] the escape encoding in [`enc`].
    fn encode(&self) -> Self::Enc;

    /// Rebuild a key from a digit string produced by
    /// [`encode`](Self::encode).
    ///
    /// # Panics
    ///
    /// May panic on byte strings no `encode` produced.
    fn from_encoded(encoded: &[u8]) -> Self;

    /// A 64-bit projection that preserves locality (nearby keys map to
    /// nearby hints) for the sharded facade's block router: `u64` keys
    /// map to themselves, byte strings to their first 8 raw bytes
    /// big-endian — so a shared prefix keeps a key cluster on one shard.
    fn route_hint(&self) -> u64;

    /// Move the key into a slot word (see the trait-level safety
    /// contract).
    fn into_slot(self) -> u64;

    /// Clone the key a slot holds.
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word of this key type.
    unsafe fn slot_key(slot: u64) -> Self;

    /// Produce a new, independently-owned slot with the same key.
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word of this key type.
    unsafe fn slot_clone(slot: u64) -> u64;

    /// Release a slot immediately (single-threaded contexts: drops,
    /// failed publication).
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word of this key type, and no other
    /// thread may still read it.
    unsafe fn slot_free(slot: u64);

    /// Release a slot through the epoch-reclamation `g` (concurrent
    /// contexts: readers pinned in earlier epochs may still dereference
    /// it).
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word of this key type that no new
    /// reader can reach (unlinked under the owning node's lock).
    unsafe fn slot_retire(slot: u64, g: &Guard);

    /// Compare this key (the probe) against the key a slot holds.
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word of this key type.
    unsafe fn cmp_slot(&self, slot: u64) -> Ordering;

    /// Compare the keys two slots hold.
    ///
    /// # Safety
    ///
    /// Both must be live slot words of this key type.
    unsafe fn slot_cmp_slot(a: u64, b: u64) -> Ordering;
}

// SAFETY: the slot word is the key itself — always valid, nothing owned,
// `Relaxed` suffices because no pointee exists to publish.
unsafe impl IndexKey for u64 {
    const INLINE: bool = true;
    const SLOT_LOAD: MemOrd = MemOrd::Relaxed;
    const SLOT_STORE: MemOrd = MemOrd::Relaxed;

    type Enc = [u8; 8];

    #[inline]
    fn encode(&self) -> [u8; 8] {
        self.to_be_bytes()
    }

    #[inline]
    fn from_encoded(encoded: &[u8]) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&encoded[..8]);
        u64::from_be_bytes(b)
    }

    #[inline]
    fn route_hint(&self) -> u64 {
        *self
    }

    #[inline]
    fn into_slot(self) -> u64 {
        self
    }
    #[inline]
    unsafe fn slot_key(slot: u64) -> u64 {
        slot
    }
    #[inline]
    unsafe fn slot_clone(slot: u64) -> u64 {
        slot
    }
    #[inline]
    unsafe fn slot_free(_slot: u64) {}
    #[inline]
    unsafe fn slot_retire(_slot: u64, _g: &Guard) {}
    #[inline]
    unsafe fn cmp_slot(&self, slot: u64) -> Ordering {
        self.cmp(&slot)
    }
    #[inline]
    unsafe fn slot_cmp_slot(a: u64, b: u64) -> Ordering {
        a.cmp(&b)
    }
}

/// An owned, immutable byte-string key.
///
/// Ordering is plain lexicographic byte order (the order every view of
/// the key preserves: `Ord`, the [`enc`] digit encoding, and — for the
/// leading 8 bytes — [`route_hint`](IndexKey::route_hint)).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(Box<[u8]>);

impl Bytes {
    /// An empty key (the smallest byte string).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// The raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<&[u8]> for Bytes {
    fn from(b: &[u8]) -> Bytes {
        Bytes(b.into())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(b: Vec<u8>) -> Bytes {
        Bytes(b.into_boxed_slice())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes(s.as_bytes().into())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes(s.into_bytes().into_boxed_slice())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(b: [u8; N]) -> Bytes {
        Bytes(b.as_slice().into())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl Bytes {
    #[inline]
    unsafe fn slot_ref<'a>(slot: u64) -> &'a Bytes {
        debug_assert!(slot != 0, "null byte-key slot dereferenced");
        &*(slot as usize as *const Bytes)
    }
}

// SAFETY: the slot word is a `Box::into_raw` pointer to an immutable
// `Bytes`; ownership moves with the word, `Release`/`Acquire` publish
// the pointee, and epoch retirement defers the free past pinned readers.
unsafe impl IndexKey for Bytes {
    const INLINE: bool = false;
    const SLOT_LOAD: MemOrd = MemOrd::Acquire;
    const SLOT_STORE: MemOrd = MemOrd::Release;

    type Enc = Vec<u8>;

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        enc::encode_into(&self.0, &mut out);
        out
    }

    fn from_encoded(encoded: &[u8]) -> Bytes {
        Bytes::from(enc::decode(encoded).expect("malformed byte-key encoding"))
    }

    fn route_hint(&self) -> u64 {
        let mut b = [0u8; 8];
        let n = self.0.len().min(8);
        b[..n].copy_from_slice(&self.0[..n]);
        u64::from_be_bytes(b)
    }

    fn into_slot(self) -> u64 {
        Box::into_raw(Box::new(self)) as usize as u64
    }
    unsafe fn slot_key(slot: u64) -> Bytes {
        Bytes::slot_ref(slot).clone()
    }
    unsafe fn slot_clone(slot: u64) -> u64 {
        Bytes::slot_ref(slot).clone().into_slot()
    }
    unsafe fn slot_free(slot: u64) {
        drop(Box::from_raw(slot as usize as *mut Bytes));
    }
    unsafe fn slot_retire(slot: u64, g: &Guard) {
        g.retire_ptr(slot as usize as *mut Bytes);
    }
    unsafe fn cmp_slot(&self, slot: u64) -> Ordering {
        self.cmp(Bytes::slot_ref(slot))
    }
    unsafe fn slot_cmp_slot(a: u64, b: u64) -> Ordering {
        Bytes::slot_ref(a).cmp(Bytes::slot_ref(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc_of(raw: &[u8]) -> Vec<u8> {
        let mut v = Vec::new();
        enc::encode_into(raw, &mut v);
        v
    }

    #[test]
    fn encoding_round_trips() {
        let cases: &[&[u8]] = &[
            b"",
            b"a",
            b"user4823",
            &[0x00],
            &[0x01],
            &[0x00, 0x00, 0x01],
            &[0xff, 0x00, 0x7f, 0x01, 0x02],
            &[0x01, 0x02, 0x03],
        ];
        for &raw in cases {
            let e = enc_of(raw);
            assert_eq!(e.len(), enc::encoded_len(raw), "{raw:?}");
            assert_eq!(enc::decode(&e).as_deref(), Some(raw), "{raw:?}");
        }
    }

    #[test]
    fn encoding_is_prefix_free_and_order_preserving() {
        // A generator dense in the hard cases: empty, terminator-like
        // and escape-like bytes, shared prefixes of different lengths.
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let alphabet = [0x00u8, 0x01, 0x02, b'a', 0xff];
        for &a in &alphabet {
            keys.push(vec![a]);
            for &b in &alphabet {
                keys.push(vec![a, b]);
                keys.push(vec![a, b, a]);
            }
        }
        keys.push(Vec::new());
        keys.sort();
        keys.dedup();
        for x in &keys {
            for y in &keys {
                let (ex, ey) = (enc_of(x), enc_of(y));
                assert_eq!(x.cmp(y), ex.cmp(&ey), "order broken for {x:?} vs {y:?}");
                if x != y {
                    assert!(!ey.starts_with(&ex), "enc({x:?}) is a prefix of enc({y:?})");
                }
            }
        }
    }

    #[test]
    fn malformed_encodings_are_rejected() {
        assert_eq!(enc::decode(&[]), None, "missing terminator");
        assert_eq!(enc::decode(b"a"), None, "missing terminator");
        assert_eq!(enc::decode(&[0x01, 0x00]), None, "dangling escape");
        assert_eq!(enc::decode(&[0x01, 0x07, 0x00]), None, "unknown escape");
        assert_eq!(enc::decode(&[0x00, b'a']), None, "early terminator");
    }

    #[test]
    fn u64_digits_sort_and_round_trip() {
        let ks = [0u64, 1, 255, 256, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        for &a in &ks {
            assert_eq!(u64::from_encoded(&a.encode()), a);
            assert_eq!(a.route_hint(), a);
            for &b in &ks {
                assert_eq!(a.cmp(&b), a.encode().cmp(&b.encode()));
            }
        }
    }

    #[test]
    fn u64_slots_are_the_identity() {
        // u64 is the inline key type (INLINE = true): slots are the
        // keys themselves, every slot op below is the identity.
        let s = 7u64.into_slot();
        assert_eq!(s, 7);
        unsafe {
            assert_eq!(u64::slot_key(s), 7);
            assert_eq!(u64::slot_clone(s), s);
            assert_eq!(5u64.cmp_slot(s), Ordering::Less);
            assert_eq!(u64::slot_cmp_slot(9, 9), Ordering::Equal);
            u64::slot_free(s);
        }
    }

    #[test]
    fn bytes_slots_own_clone_and_free() {
        const { assert!(!Bytes::INLINE) };
        let a = Bytes::from("alpha");
        let b = Bytes::from("beta");
        let sa = a.clone().into_slot();
        let sb = b.clone().into_slot();
        unsafe {
            assert_eq!(Bytes::slot_key(sa), a);
            assert_eq!(a.cmp_slot(sb), Ordering::Less);
            assert_eq!(b.cmp_slot(sb), Ordering::Equal);
            assert_eq!(Bytes::slot_cmp_slot(sa, sb), Ordering::Less);
            let sc = Bytes::slot_clone(sa);
            assert_ne!(sc, sa, "clone must own fresh storage");
            assert_eq!(Bytes::slot_cmp_slot(sc, sa), Ordering::Equal);
            Bytes::slot_free(sa);
            Bytes::slot_free(sb);
            Bytes::slot_free(sc);
        }
    }

    #[test]
    fn bytes_encoding_matches_ord_and_routes_by_prefix() {
        let ks = [
            Bytes::new(),
            Bytes::from("a"),
            Bytes::from(&b"a\x00"[..]),
            Bytes::from(&b"a\x00\x01"[..]),
            Bytes::from("ab"),
            Bytes::from("user00000001"),
            Bytes::from("user00000002"),
        ];
        for a in &ks {
            assert_eq!(Bytes::from_encoded(a.encode().as_ref()), *a);
            for b in &ks {
                assert_eq!(a.cmp(b), a.encode().cmp(&b.encode()), "{a:?} vs {b:?}");
            }
        }
        // Keys sharing an 8-byte prefix share a routing hint (one shard).
        assert_eq!(
            Bytes::from("user00000001").route_hint(),
            Bytes::from("user00000002").route_hint()
        );
        assert_ne!(
            Bytes::from("user0000").route_hint(),
            Bytes::from("item0000").route_hint()
        );
    }

    #[test]
    fn bytes_debug_is_readable() {
        assert_eq!(format!("{:?}", Bytes::from(&b"a\x00z"[..])), "b\"a\\x00z\"");
    }
}
