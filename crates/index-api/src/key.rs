//! The key abstraction: [`IndexKey`] makes every index in the workspace
//! generic over its key type while keeping the fixed-width `u64` hot
//! path exactly as fast as it was before the generalization.
//!
//! Two representations have to meet:
//!
//! * the B+-tree stores keys in fixed `[AtomicU64]` node arrays so its
//!   branchless search kernel can stream them — a variable-length key
//!   must therefore fit in a 64-bit **slot word** (the key itself when
//!   it is a `u64`, the [`bslot`] inline-or-pointer word otherwise);
//! * the ART consumes keys as **digit strings** — `u64` keys as their 8
//!   big-endian bytes, byte-string keys through the order-preserving,
//!   prefix-free escape encoding in [`enc`].
//!
//! [`IndexKey`] carries both views plus the routing hint the sharded
//! facade partitions by. Three implementations exist: `u64` (inline
//! slots, fixed 8-byte digits, `Relaxed` slot ordering — the
//! monomorphized tree code is byte-for-byte the pre-generic code),
//! [`Bytes`] (the [`bslot`] fast path: short keys inline in the word,
//! long keys in single-allocation heap blobs, published with
//! `Release`/`Acquire`), and [`BoxedBytes`] (the PR 8 boxed-slot
//! representation, kept as an in-run benchmark baseline).

use std::cmp::Ordering;
use std::sync::atomic::Ordering as MemOrd;

use optiql_reclaim::Guard;

/// Order-preserving, prefix-free byte-string encoding.
///
/// Content bytes are escaped so that `0x00` never appears inside an
/// encoding, then a single `0x00` terminator is appended:
///
/// ```text
/// 0x00 → 0x01 0x02      0x01 → 0x01 0x03      b ≥ 0x02 → b
/// terminator: 0x00
/// ```
///
/// Two properties follow, and both are load-bearing for the indexes:
///
/// * **prefix-free** — an encoding's only `0x00` is its final byte, so
///   no encoding is a proper prefix of another. The ART requires this:
///   a stored key must terminate at a leaf, never inside another key's
///   digit path.
/// * **order-preserving** — for raw strings `a < b` (lexicographic),
///   `enc(a) < enc(b)`. If `a` is a proper prefix of `b`, `enc(a)`
///   diverges with its terminator `0x00` against a content byte
///   `≥ 0x01`. Otherwise the first differing raw pair `(x, y)` with
///   `x < y` maps to escape pairs that preserve the order case by case
///   (`0x00 → 01 02` and `0x01 → 01 03` both start below any unescaped
///   `b ≥ 2`, and `01 02 < 01 03`).
///
/// The functions are pure and allocation-explicit so the module can run
/// under Miri as-is.
pub mod enc {
    /// Escape lead byte.
    pub const ESC: u8 = 0x01;
    /// `ESC` followed by this encodes a raw `0x00`.
    pub const ESC_ZERO: u8 = 0x02;
    /// `ESC` followed by this encodes a raw `0x01`.
    pub const ESC_ONE: u8 = 0x03;
    /// Terminator byte; never appears inside an encoding.
    pub const TERM: u8 = 0x00;

    /// Append the encoding of `raw` (escaped content + terminator) to
    /// `out`, reserving the exact encoded length up front so the append
    /// reallocates at most once regardless of escape density.
    pub fn encode_into(raw: &[u8], out: &mut Vec<u8>) {
        out.reserve(encoded_len(raw));
        for &b in raw {
            match b {
                0x00 => out.extend_from_slice(&[ESC, ESC_ZERO]),
                0x01 => out.extend_from_slice(&[ESC, ESC_ONE]),
                _ => out.push(b),
            }
        }
        out.push(TERM);
    }

    /// Decode one full encoding (as produced by [`encode_into`]) back to
    /// the raw bytes. Returns `None` on malformed input: missing or
    /// early terminator, dangling escape, unknown escape payload.
    pub fn decode(encoded: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(encoded.len().saturating_sub(1));
        let mut i = 0;
        loop {
            match *encoded.get(i)? {
                TERM => {
                    // The terminator must be the final byte.
                    return (i + 1 == encoded.len()).then_some(out);
                }
                ESC => {
                    match *encoded.get(i + 1)? {
                        ESC_ZERO => out.push(0x00),
                        ESC_ONE => out.push(0x01),
                        _ => return None,
                    }
                    i += 2;
                }
                b => {
                    out.push(b);
                    i += 1;
                }
            }
        }
    }

    /// Encoded length of `raw` (content with escapes, plus terminator).
    pub fn encoded_len(raw: &[u8]) -> usize {
        raw.iter().filter(|&&b| b <= 0x01).count() + raw.len() + 1
    }
}

/// Byte-string **slot words**: the inline-or-pointer representation
/// behind [`Bytes`] key slots and the B+-tree's per-node prefix words.
///
/// # Word format
///
/// Bit 0 is the tag. Heap pointers are 8-aligned so a real pointer
/// always has bit 0 clear; an **inline** word has it set:
///
/// ```text
/// inline:  [ b0 b1 b2 b3 b4 b5 b6 | (len << 1) | 1 ]   (big-endian bytes)
/// pointer: 8-aligned address of [len: u32][bytes: len] (bit 0 = 0)
/// ```
///
/// A byte string of raw length ≤ 7 packs its bytes big-endian into the
/// top 7 bytes (zero-padded) with the length in the low tag byte —
/// no allocation and no pointer chase. Longer strings live in a single
/// heap blob: a 4-byte length header directly followed by the bytes,
/// so a comparison is one pointer chase (the boxed-key representation
/// this replaces took two).
///
/// # Why one `u64` compare is a lexicographic compare
///
/// For two inline words, the plain integer compare is the tuple compare
/// `(padded bytes, len)`, and that tuple order *is* lexicographic
/// order: zero-padding extends a string with the minimal byte, so the
/// first differing padded byte decides correctly whenever the strings
/// are not prefix-related, and when one string is a prefix of the
/// other's padding the length tiebreak puts the shorter (smaller)
/// string first. This is the "SWAR compare": the byte-wise comparison
/// collapses into one register-width integer compare with the
/// first-difference resolved by hardware, no loop and no branches.
///
/// A probe longer than 7 bytes gets a **sort word** — its first 7
/// bytes with low byte `0xff`. Against any inline word the integer
/// compare still decides correctly: if the top 7 bytes differ the
/// verdict is the first differing byte; if they are equal the inline
/// key is a (proper) prefix of the probe and `0xff` outranks every
/// inline tag byte (max `0x0f`). Equality is only reportable between
/// two inline words, which is exactly when it is true.
///
/// # Concurrency
///
/// Words are published through the node arrays' atomics
/// (`Release`/`Acquire` per [`Bytes`]); blobs are immutable after
/// publication and released either immediately ([`free`]) or through
/// epoch reclamation ([`retire`]) so pinned optimistic readers never
/// dereference freed memory. Everything here is Miri-clean.
pub mod bslot {
    use optiql_reclaim::Guard;
    use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
    use std::cmp::Ordering;

    /// Longest raw byte string that packs inline.
    pub const MAX_INLINE: usize = 7;

    /// The inline word of the empty byte string: tag bit only.
    pub const EMPTY: u64 = 1;

    /// Blob header size (`u32` length) preceding the bytes.
    const HDR: usize = 4;

    /// True when `slot` is an inline word (no pointee).
    #[inline]
    pub fn is_inline(slot: u64) -> bool {
        slot & 1 != 0
    }

    /// Pack `raw` (length ≤ [`MAX_INLINE`]) into an inline word.
    #[inline]
    pub fn pack(raw: &[u8]) -> u64 {
        debug_assert!(raw.len() <= MAX_INLINE);
        let mut b = [0u8; 8];
        b[..raw.len()].copy_from_slice(raw);
        b[7] = ((raw.len() as u8) << 1) | 1;
        u64::from_be_bytes(b)
    }

    /// The order-preserving 64-bit projection of `raw`: its inline word
    /// when it fits, else its first 7 bytes over a `0xff` tag byte (see
    /// the module docs for why integer order on these words refines
    /// lexicographic order, with ties only between equal inline words).
    #[inline]
    pub fn sort_word(raw: &[u8]) -> u64 {
        if raw.len() <= MAX_INLINE {
            pack(raw)
        } else {
            let mut b = [0u8; 8];
            b[..MAX_INLINE].copy_from_slice(&raw[..MAX_INLINE]);
            b[7] = 0xff;
            u64::from_be_bytes(b)
        }
    }

    /// Hint the CPU to pull the line at `p` into cache. Prefetch is
    /// architecturally defined never to fault, whatever `p` points at,
    /// so it is safe on raw, not-yet-validated optimistic reads (a stale
    /// hint is just a wasted fetch).
    #[inline(always)]
    pub fn prefetch_read(p: *const u8) {
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = p;
    }

    /// Hint the CPU to pull a heap slot's blob into cache; no-op for
    /// inline slots.
    #[inline(always)]
    pub fn prefetch(slot: u64) {
        if !is_inline(slot) {
            prefetch_read(slot as *const u8);
        }
    }

    fn blob_layout(len: usize) -> Layout {
        // 8-alignment keeps bit 0 of the address free for the tag.
        Layout::from_size_align(HDR + len, 8).expect("byte key too large")
    }

    /// Move `raw` into a fresh slot word: inline when it fits, else one
    /// heap blob.
    #[inline]
    pub fn make(raw: &[u8]) -> u64 {
        if raw.len() <= MAX_INLINE {
            pack(raw)
        } else {
            assert!(
                u32::try_from(raw.len()).is_ok(),
                "byte key exceeds u32 length"
            );
            let layout = blob_layout(raw.len());
            // SAFETY: layout has non-zero size (HDR > 0); header and
            // bytes are fully initialized before the pointer escapes.
            unsafe {
                let p = alloc(layout);
                if p.is_null() {
                    handle_alloc_error(layout);
                }
                (p as *mut u32).write(raw.len() as u32);
                std::ptr::copy_nonoverlapping(raw.as_ptr(), p.add(HDR), raw.len());
                debug_assert!(p as usize & 7 == 0);
                p as usize as u64
            }
        }
    }

    /// The bytes a pointer slot's blob holds.
    ///
    /// # Safety
    ///
    /// `slot` must be a live pointer slot (bit 0 clear) produced by
    /// [`make`] or [`clone_slot`]; the returned borrow must not outlive
    /// the slot's release.
    #[inline]
    pub unsafe fn heap_bytes<'a>(slot: u64) -> &'a [u8] {
        debug_assert!(!is_inline(slot) && slot != 0);
        let p = slot as usize as *const u8;
        let len = (p as *const u32).read() as usize;
        std::slice::from_raw_parts(p.add(HDR), len)
    }

    /// View the bytes a slot holds; inline bytes are unpacked into
    /// `tmp`, pointer slots borrow the blob.
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word.
    #[inline]
    pub unsafe fn slot_bytes(slot: u64, tmp: &mut [u8; MAX_INLINE]) -> &[u8] {
        if is_inline(slot) {
            let n = ((slot as u8) >> 1) as usize;
            debug_assert!(n <= MAX_INLINE);
            tmp.copy_from_slice(&slot.to_be_bytes()[..MAX_INLINE]);
            &tmp[..n]
        } else {
            heap_bytes(slot)
        }
    }

    /// Append the bytes a slot holds to `out`.
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word.
    #[inline]
    pub unsafe fn append_to(slot: u64, out: &mut Vec<u8>) {
        let mut tmp = [0u8; MAX_INLINE];
        out.extend_from_slice(slot_bytes(slot, &mut tmp));
    }

    /// Compare probe bytes (with their precomputed [`sort_word`])
    /// against the key a slot holds: one integer compare when the slot
    /// is inline, one memcmp after one pointer chase otherwise.
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word.
    #[inline]
    pub unsafe fn cmp(probe: &[u8], probe_word: u64, slot: u64) -> Ordering {
        debug_assert_eq!(probe_word, sort_word(probe));
        if is_inline(slot) {
            probe_word.cmp(&slot)
        } else {
            probe.cmp(heap_bytes(slot))
        }
    }

    /// Compare the keys two slots hold.
    ///
    /// # Safety
    ///
    /// Both must be live slot words.
    #[inline]
    pub unsafe fn cmp_slots(a: u64, b: u64) -> Ordering {
        match (is_inline(a), is_inline(b)) {
            (true, true) => a.cmp(&b),
            // A blob always holds > MAX_INLINE bytes, so its sort word
            // (tag 0xff) never ties with an inline word.
            (true, false) => a.cmp(&sort_word(heap_bytes(b))),
            (false, true) => sort_word(heap_bytes(a)).cmp(&b),
            (false, false) => heap_bytes(a).cmp(heap_bytes(b)),
        }
    }

    /// Produce an independently-owned slot holding the same bytes.
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word.
    #[inline]
    pub unsafe fn clone_slot(slot: u64) -> u64 {
        if is_inline(slot) {
            slot
        } else {
            make(heap_bytes(slot))
        }
    }

    /// Release a slot immediately (single-threaded contexts only).
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word no other thread can still read,
    /// and must not be released twice.
    #[inline]
    pub unsafe fn free(slot: u64) {
        if !is_inline(slot) {
            let p = slot as usize as *mut u8;
            let len = (p as *const u32).read() as usize;
            dealloc(p, blob_layout(len));
        }
    }

    /// Release a slot through epoch reclamation: pinned readers that
    /// loaded the word before it was unlinked may still dereference the
    /// blob until their epochs retire.
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word no new reader can reach.
    #[inline]
    pub unsafe fn retire(slot: u64, g: &Guard) {
        if !is_inline(slot) {
            g.defer(move || free(slot));
        }
    }
}

/// A key type the index stack can store, search, scan and shard.
///
/// # Safety
///
/// The slot-word methods form a manual ownership protocol the B+-tree
/// holds raw `u64` words against; implementations must uphold it or the
/// tree dereferences garbage:
///
/// * [`into_slot`](Self::into_slot) transfers ownership of the key into
///   the word; every slot produced by it (or by
///   [`slot_clone`](Self::slot_clone)) must stay valid to read through
///   [`slot_key`](Self::slot_key) / [`cmp_slot`](Self::cmp_slot) until
///   released by exactly one [`slot_free`](Self::slot_free) or
///   [`slot_retire`](Self::slot_retire);
/// * for pointer-backed keys the pointee must never be mutated after
///   `into_slot`, so concurrent readers racing a release (but protected
///   by the epoch the retire went through) always observe a fully
///   initialized, immutable key;
/// * `SLOT_LOAD`/`SLOT_STORE` must be strong enough that a reader which
///   loads a slot word published by another thread's store observes the
///   pointee's initialization (`Relaxed` is only sound for inline keys);
/// * if [`TRUNCATE`](Self::TRUNCATE) is true, every slot word must use
///   the [`bslot`] representation (the B+-tree then stores per-node key
///   *suffixes* and manipulates them through `bslot` directly), and
///   [`raw_bytes`](Self::raw_bytes) / [`from_raw`](Self::from_raw) /
///   [`probe_word`](Self::probe_word) must be implemented and mutually
///   consistent.
pub unsafe trait IndexKey:
    Ord + Eq + Clone + Send + Sync + std::fmt::Debug + 'static
{
    /// True when the key lives inline in the slot word (no heap, no
    /// pointer chase; the tree's fixed-width fast path).
    const INLINE: bool;

    /// True when the B+-tree should store this key type through the
    /// [`bslot`] representation with per-node common-prefix truncation
    /// (node slots hold suffixes; short suffixes pack inline). See the
    /// trait-level safety contract.
    const TRUNCATE: bool = false;

    /// Memory ordering for loads of key-slot words. `Relaxed` for
    /// inline keys; `Acquire` for pointer slots so the pointee's bytes
    /// are visible.
    const SLOT_LOAD: MemOrd;

    /// Memory ordering for stores of key-slot words. `Relaxed` for
    /// inline keys; `Release` for pointer slots.
    const SLOT_STORE: MemOrd;

    /// The digit-string view: what [`encode`](Self::encode) yields.
    type Enc: AsRef<[u8]>;

    /// Encode into an order-preserving, prefix-free digit string (the
    /// ART's descent alphabet). For `u64` this is the 8 big-endian
    /// bytes on the stack; for [`Bytes`] the escape encoding in [`enc`].
    fn encode(&self) -> Self::Enc;

    /// Append the digit-string encoding to `out` — the allocation-free
    /// variant of [`encode`](Self::encode) for hot loops that reuse a
    /// scratch buffer.
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.encode().as_ref());
    }

    /// Rebuild a key from a digit string produced by
    /// [`encode`](Self::encode).
    ///
    /// # Panics
    ///
    /// May panic on byte strings no `encode` produced.
    fn from_encoded(encoded: &[u8]) -> Self;

    /// A 64-bit projection that preserves locality (nearby keys map to
    /// nearby hints) for the sharded facade's block router: `u64` keys
    /// map to themselves, byte strings to their precomputed
    /// [`bslot::sort_word`] — so a shared prefix keeps a key cluster on
    /// one shard, and for [`Bytes`] the hint is a field load, not a
    /// byte-shuffling loop.
    fn route_hint(&self) -> u64;

    /// The raw byte view behind the [`bslot`] representation. Only
    /// called when [`TRUNCATE`](Self::TRUNCATE) is true.
    fn raw_bytes(&self) -> &[u8] {
        unimplemented!("raw_bytes is only available for TRUNCATE keys")
    }

    /// Rebuild a key from its raw bytes. Only called when
    /// [`TRUNCATE`](Self::TRUNCATE) is true.
    fn from_raw(_raw: &[u8]) -> Self {
        unimplemented!("from_raw is only available for TRUNCATE keys")
    }

    /// The precomputed [`bslot::sort_word`] of
    /// [`raw_bytes`](Self::raw_bytes). Only called when
    /// [`TRUNCATE`](Self::TRUNCATE) is true.
    fn probe_word(&self) -> u64 {
        unimplemented!("probe_word is only available for TRUNCATE keys")
    }

    /// Hint the CPU to pull any heap payload an equality or ordering
    /// check on this key will read. No-op for fully inline keys; batched
    /// engines call it one pipeline turn before comparing so the fetch
    /// overlaps other work.
    #[inline]
    fn prefetch_payload(&self) {}

    /// Move the key into a slot word (see the trait-level safety
    /// contract).
    fn into_slot(self) -> u64;

    /// Clone the key a slot holds.
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word of this key type.
    unsafe fn slot_key(slot: u64) -> Self;

    /// Produce a new, independently-owned slot with the same key.
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word of this key type.
    unsafe fn slot_clone(slot: u64) -> u64;

    /// Release a slot immediately (single-threaded contexts: drops,
    /// failed publication).
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word of this key type, and no other
    /// thread may still read it.
    unsafe fn slot_free(slot: u64);

    /// Release a slot through the epoch-reclamation `g` (concurrent
    /// contexts: readers pinned in earlier epochs may still dereference
    /// it).
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word of this key type that no new
    /// reader can reach (unlinked under the owning node's lock).
    unsafe fn slot_retire(slot: u64, g: &Guard);

    /// Compare this key (the probe) against the key a slot holds.
    ///
    /// # Safety
    ///
    /// `slot` must be a live slot word of this key type.
    unsafe fn cmp_slot(&self, slot: u64) -> Ordering;

    /// Compare the keys two slots hold.
    ///
    /// # Safety
    ///
    /// Both must be live slot words of this key type.
    unsafe fn slot_cmp_slot(a: u64, b: u64) -> Ordering;
}

// SAFETY: the slot word is the key itself — always valid, nothing owned,
// `Relaxed` suffices because no pointee exists to publish.
unsafe impl IndexKey for u64 {
    const INLINE: bool = true;
    const SLOT_LOAD: MemOrd = MemOrd::Relaxed;
    const SLOT_STORE: MemOrd = MemOrd::Relaxed;

    type Enc = [u8; 8];

    #[inline]
    fn encode(&self) -> [u8; 8] {
        self.to_be_bytes()
    }

    #[inline]
    fn from_encoded(encoded: &[u8]) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&encoded[..8]);
        u64::from_be_bytes(b)
    }

    #[inline]
    fn route_hint(&self) -> u64 {
        *self
    }

    #[inline]
    fn into_slot(self) -> u64 {
        self
    }
    #[inline]
    unsafe fn slot_key(slot: u64) -> u64 {
        slot
    }
    #[inline]
    unsafe fn slot_clone(slot: u64) -> u64 {
        slot
    }
    #[inline]
    unsafe fn slot_free(_slot: u64) {}
    #[inline]
    unsafe fn slot_retire(_slot: u64, _g: &Guard) {}
    #[inline]
    unsafe fn cmp_slot(&self, slot: u64) -> Ordering {
        self.cmp(&slot)
    }
    #[inline]
    unsafe fn slot_cmp_slot(a: u64, b: u64) -> Ordering {
        a.cmp(&b)
    }
}

/// An owned, immutable byte-string key.
///
/// Ordering is plain lexicographic byte order (the order every view of
/// the key preserves: `Ord`, the [`enc`] digit encoding, the [`bslot`]
/// slot words, and [`route_hint`](IndexKey::route_hint)).
///
/// The construction-time [`bslot::sort_word`] is cached alongside the
/// bytes: comparisons against inline slots and the derived `Ord` fast
/// path are then single integer compares, and `route_hint` is a field
/// load. The derived ordering compares `(word, raw)` — sound because
/// the word order refines the raw order (see [`bslot`]).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    word: u64,
    raw: Box<[u8]>,
}

impl Bytes {
    /// An empty key (the smallest byte string).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// The raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.raw
    }

    fn from_boxed(raw: Box<[u8]>) -> Bytes {
        Bytes {
            word: bslot::sort_word(&raw),
            raw,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes {
            word: bslot::EMPTY,
            raw: Box::default(),
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.raw
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.raw
    }
}

impl From<&[u8]> for Bytes {
    fn from(b: &[u8]) -> Bytes {
        Bytes::from_boxed(b.into())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(b: Vec<u8>) -> Bytes {
        Bytes::from_boxed(b.into_boxed_slice())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::from_boxed(s.as_bytes().into())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from_boxed(s.into_bytes().into_boxed_slice())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(b: [u8; N]) -> Bytes {
        Bytes::from_boxed(b.as_slice().into())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.raw.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

// SAFETY: slot words use the `bslot` representation — inline words own
// nothing, pointer slots own one immutable blob whose publication is
// ordered by `Release`/`Acquire` and whose free is epoch-deferred.
// `raw_bytes`/`from_raw`/`probe_word` are mutually consistent views of
// the same byte string, so TRUNCATE = true is sound.
unsafe impl IndexKey for Bytes {
    const INLINE: bool = false;
    const TRUNCATE: bool = true;
    const SLOT_LOAD: MemOrd = MemOrd::Acquire;
    const SLOT_STORE: MemOrd = MemOrd::Release;

    type Enc = Vec<u8>;

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(enc::encoded_len(&self.raw));
        enc::encode_into(&self.raw, &mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        enc::encode_into(&self.raw, out);
    }

    fn from_encoded(encoded: &[u8]) -> Bytes {
        Bytes::from(enc::decode(encoded).expect("malformed byte-key encoding"))
    }

    #[inline]
    fn route_hint(&self) -> u64 {
        self.word
    }

    #[inline]
    fn raw_bytes(&self) -> &[u8] {
        &self.raw
    }

    #[inline]
    fn from_raw(raw: &[u8]) -> Bytes {
        Bytes::from(raw)
    }

    #[inline]
    fn probe_word(&self) -> u64 {
        self.word
    }

    #[inline]
    fn prefetch_payload(&self) {
        bslot::prefetch_read(self.raw.as_ptr());
    }

    fn into_slot(self) -> u64 {
        bslot::make(&self.raw)
    }
    unsafe fn slot_key(slot: u64) -> Bytes {
        let mut tmp = [0u8; bslot::MAX_INLINE];
        Bytes::from(bslot::slot_bytes(slot, &mut tmp))
    }
    unsafe fn slot_clone(slot: u64) -> u64 {
        bslot::clone_slot(slot)
    }
    unsafe fn slot_free(slot: u64) {
        bslot::free(slot);
    }
    unsafe fn slot_retire(slot: u64, g: &Guard) {
        bslot::retire(slot, g);
    }
    #[inline]
    unsafe fn cmp_slot(&self, slot: u64) -> Ordering {
        bslot::cmp(&self.raw, self.word, slot)
    }
    unsafe fn slot_cmp_slot(a: u64, b: u64) -> Ordering {
        bslot::cmp_slots(a, b)
    }
}

/// The PR 8 boxed-slot byte key, kept as the **benchmark baseline** for
/// the [`bslot`] fast path: every slot word is a `Box` pointer (two
/// dependent loads per comparison — box, then the byte buffer), no
/// inlining, no per-node prefix truncation (`TRUNCATE` = false), and
/// `route_hint` is the original leading-8-raw-bytes projection.
///
/// The `keyed` benchmark runs the same workload over [`Bytes`] and
/// `BoxedBytes` trees to report the fast path's speedup in-run. Not
/// intended for production indexes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct BoxedBytes(pub Bytes);

impl From<&[u8]> for BoxedBytes {
    fn from(b: &[u8]) -> BoxedBytes {
        BoxedBytes(Bytes::from(b))
    }
}

impl From<&str> for BoxedBytes {
    fn from(s: &str) -> BoxedBytes {
        BoxedBytes(Bytes::from(s))
    }
}

impl BoxedBytes {
    #[inline]
    unsafe fn slot_ref<'a>(slot: u64) -> &'a BoxedBytes {
        debug_assert!(slot != 0, "null byte-key slot dereferenced");
        &*(slot as usize as *const BoxedBytes)
    }
}

// SAFETY: the slot word is a `Box::into_raw` pointer to an immutable
// `BoxedBytes`; ownership moves with the word, `Release`/`Acquire`
// publish the pointee, and epoch retirement defers the free past pinned
// readers.
unsafe impl IndexKey for BoxedBytes {
    const INLINE: bool = false;
    const SLOT_LOAD: MemOrd = MemOrd::Acquire;
    const SLOT_STORE: MemOrd = MemOrd::Release;

    type Enc = Vec<u8>;

    fn encode(&self) -> Vec<u8> {
        self.0.encode()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }

    fn from_encoded(encoded: &[u8]) -> BoxedBytes {
        BoxedBytes(Bytes::from_encoded(encoded))
    }

    fn route_hint(&self) -> u64 {
        let raw = self.0.as_bytes();
        let mut b = [0u8; 8];
        let n = raw.len().min(8);
        b[..n].copy_from_slice(&raw[..n]);
        u64::from_be_bytes(b)
    }

    #[inline]
    fn prefetch_payload(&self) {
        self.0.prefetch_payload();
    }

    fn into_slot(self) -> u64 {
        Box::into_raw(Box::new(self)) as usize as u64
    }
    unsafe fn slot_key(slot: u64) -> BoxedBytes {
        BoxedBytes::slot_ref(slot).clone()
    }
    unsafe fn slot_clone(slot: u64) -> u64 {
        BoxedBytes::slot_ref(slot).clone().into_slot()
    }
    unsafe fn slot_free(slot: u64) {
        drop(Box::from_raw(slot as usize as *mut BoxedBytes));
    }
    unsafe fn slot_retire(slot: u64, g: &Guard) {
        g.retire_ptr(slot as usize as *mut BoxedBytes);
    }
    unsafe fn cmp_slot(&self, slot: u64) -> Ordering {
        // Byte-wise compare after the double chase — the PR 8 cost
        // model this type exists to preserve.
        self.0
            .as_bytes()
            .cmp(BoxedBytes::slot_ref(slot).0.as_bytes())
    }
    unsafe fn slot_cmp_slot(a: u64, b: u64) -> Ordering {
        BoxedBytes::slot_ref(a)
            .0
            .as_bytes()
            .cmp(BoxedBytes::slot_ref(b).0.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc_of(raw: &[u8]) -> Vec<u8> {
        let mut v = Vec::new();
        enc::encode_into(raw, &mut v);
        v
    }

    /// A byte-string generator dense in the hard cases: empty,
    /// terminator-like and escape-like bytes, shared prefixes, and both
    /// sides of the 7-byte inline boundary.
    fn hard_cases() -> Vec<Vec<u8>> {
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let alphabet = [0x00u8, 0x01, 0x02, b'a', 0xff];
        for &a in &alphabet {
            keys.push(vec![a]);
            for &b in &alphabet {
                keys.push(vec![a, b]);
                keys.push(vec![a, b, a]);
                let mut long = vec![a; 6];
                long.push(b);
                keys.push(long.clone()); // 7 bytes: last inline length
                long.push(a);
                keys.push(long.clone()); // 8 bytes: first heap length
                long.extend_from_slice(b"suffix-tail");
                keys.push(long);
            }
        }
        keys.push(Vec::new());
        keys.push(b"user0000000000000042".to_vec());
        keys.sort();
        keys.dedup();
        keys
    }

    #[test]
    fn encoding_round_trips() {
        let cases: &[&[u8]] = &[
            b"",
            b"a",
            b"user4823",
            &[0x00],
            &[0x01],
            &[0x00, 0x00, 0x01],
            &[0xff, 0x00, 0x7f, 0x01, 0x02],
            &[0x01, 0x02, 0x03],
        ];
        for &raw in cases {
            let e = enc_of(raw);
            assert_eq!(e.len(), enc::encoded_len(raw), "{raw:?}");
            assert_eq!(enc::decode(&e).as_deref(), Some(raw), "{raw:?}");
        }
    }

    #[test]
    fn encoding_is_prefix_free_and_order_preserving() {
        let keys = hard_cases();
        for x in &keys {
            for y in &keys {
                let (ex, ey) = (enc_of(x), enc_of(y));
                assert_eq!(x.cmp(y), ex.cmp(&ey), "order broken for {x:?} vs {y:?}");
                if x != y {
                    assert!(!ey.starts_with(&ex), "enc({x:?}) is a prefix of enc({y:?})");
                }
            }
        }
    }

    #[test]
    fn malformed_encodings_are_rejected() {
        assert_eq!(enc::decode(&[]), None, "missing terminator");
        assert_eq!(enc::decode(b"a"), None, "missing terminator");
        assert_eq!(enc::decode(&[0x01, 0x00]), None, "dangling escape");
        assert_eq!(enc::decode(&[0x01, 0x07, 0x00]), None, "unknown escape");
        assert_eq!(enc::decode(&[0x00, b'a']), None, "early terminator");
    }

    #[test]
    fn u64_digits_sort_and_round_trip() {
        let ks = [0u64, 1, 255, 256, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        for &a in &ks {
            assert_eq!(u64::from_encoded(&a.encode()), a);
            assert_eq!(a.route_hint(), a);
            for &b in &ks {
                assert_eq!(a.cmp(&b), a.encode().cmp(&b.encode()));
            }
        }
    }

    #[test]
    fn u64_slots_are_the_identity() {
        // u64 is the inline key type (INLINE = true): slots are the
        // keys themselves, every slot op below is the identity.
        let s = 7u64.into_slot();
        assert_eq!(s, 7);
        unsafe {
            assert_eq!(u64::slot_key(s), 7);
            assert_eq!(u64::slot_clone(s), s);
            assert_eq!(5u64.cmp_slot(s), Ordering::Less);
            assert_eq!(u64::slot_cmp_slot(9, 9), Ordering::Equal);
            u64::slot_free(s);
        }
    }

    #[test]
    fn inline_words_pack_round_trip_and_tag() {
        let cases: &[&[u8]] = &[
            b"",
            b"a",
            b"abcdef",  // 6 bytes
            b"abcdefg", // 7 bytes: longest inline
            &[0x00],
            &[0x00, 0x00, 0x01],
            &[0xff; 7],
        ];
        for &raw in cases {
            let w = bslot::pack(raw);
            assert!(bslot::is_inline(w), "{raw:?}");
            assert_eq!(w, bslot::sort_word(raw));
            assert_eq!(w, bslot::make(raw), "short keys must inline");
            let mut tmp = [0u8; bslot::MAX_INLINE];
            unsafe {
                assert_eq!(bslot::slot_bytes(w, &mut tmp), raw, "{raw:?}");
                assert_eq!(bslot::clone_slot(w), w);
                bslot::free(w); // no-op for inline words
            }
        }
        assert_eq!(bslot::pack(b""), bslot::EMPTY);
    }

    #[test]
    fn heap_blobs_round_trip_clone_and_free() {
        let raw = b"abcdefgh"; // 8 bytes: first heap length
        let s = bslot::make(raw);
        assert!(!bslot::is_inline(s));
        unsafe {
            assert_eq!(bslot::heap_bytes(s), raw);
            let mut tmp = [0u8; bslot::MAX_INLINE];
            assert_eq!(bslot::slot_bytes(s, &mut tmp), raw);
            let mut out = b"pfx-".to_vec();
            bslot::append_to(s, &mut out);
            assert_eq!(out, b"pfx-abcdefgh");
            let c = bslot::clone_slot(s);
            assert_ne!(c, s, "blob clone must own fresh storage");
            assert_eq!(bslot::cmp_slots(c, s), Ordering::Equal);
            bslot::free(c);
            bslot::free(s);
        }
    }

    #[test]
    fn heap_blobs_retire_through_epochs() {
        let col = optiql_reclaim::Collector::new();
        let g = col.pin();
        let s = bslot::make(b"a long enough byte key");
        let i = bslot::make(b"tiny");
        unsafe {
            bslot::retire(s, &g);
            bslot::retire(i, &g); // inline: no deferred work
        }
        drop(g);
        col.flush();
    }

    #[test]
    fn slot_compares_match_lexicographic_order_across_representations() {
        let keys = hard_cases();
        let slots: Vec<u64> = keys.iter().map(|k| bslot::make(k)).collect();
        for (x, &sx) in keys.iter().zip(&slots) {
            let wx = bslot::sort_word(x);
            assert_eq!(bslot::is_inline(sx), x.len() <= bslot::MAX_INLINE);
            for (y, &sy) in keys.iter().zip(&slots) {
                let want = x.cmp(y);
                unsafe {
                    assert_eq!(bslot::cmp(x, wx, sy), want, "cmp {x:?} vs {y:?}");
                    assert_eq!(bslot::cmp_slots(sx, sy), want, "slots {x:?} vs {y:?}");
                }
                // The sort word refines lexicographic order: strict word
                // inequality must agree, ties defer to the raw bytes.
                let wy2 = bslot::sort_word(y);
                if wx != wy2 {
                    assert_eq!(wx.cmp(&wy2), want, "sort words {x:?} vs {y:?}");
                }
            }
        }
        for s in slots {
            unsafe { bslot::free(s) };
        }
    }

    #[test]
    fn bytes_slots_inline_and_heap() {
        const { assert!(!Bytes::INLINE) };
        const { assert!(Bytes::TRUNCATE) };
        let short = Bytes::from("alpha"); // 5 bytes: inline
        let long = Bytes::from("alphabetical"); // 12 bytes: heap blob
        let ss = short.clone().into_slot();
        let sl = long.clone().into_slot();
        assert!(bslot::is_inline(ss));
        assert!(!bslot::is_inline(sl));
        unsafe {
            assert_eq!(Bytes::slot_key(ss), short);
            assert_eq!(Bytes::slot_key(sl), long);
            assert_eq!(short.cmp_slot(sl), Ordering::Less);
            assert_eq!(long.cmp_slot(sl), Ordering::Equal);
            assert_eq!(Bytes::slot_cmp_slot(ss, sl), Ordering::Less);
            let sc = Bytes::slot_clone(sl);
            assert_ne!(sc, sl, "blob clone must own fresh storage");
            assert_eq!(Bytes::slot_cmp_slot(sc, sl), Ordering::Equal);
            Bytes::slot_free(ss);
            Bytes::slot_free(sl);
            Bytes::slot_free(sc);
        }
    }

    #[test]
    fn bytes_ord_matches_raw_bytes() {
        // The derived `(word, raw)` ordering must be plain lexicographic
        // order on the raw bytes.
        let keys = hard_cases();
        for x in &keys {
            let bx = Bytes::from(x.as_slice());
            assert_eq!(bx.probe_word(), bslot::sort_word(x));
            assert_eq!(Bytes::from_raw(x), bx);
            for y in &keys {
                let by = Bytes::from(y.as_slice());
                assert_eq!(bx.cmp(&by), x.cmp(y), "{x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn bytes_encoding_matches_ord_and_routes_by_prefix() {
        let ks = [
            Bytes::new(),
            Bytes::from("a"),
            Bytes::from(&b"a\x00"[..]),
            Bytes::from(&b"a\x00\x01"[..]),
            Bytes::from("ab"),
            Bytes::from("user00000001"),
            Bytes::from("user00000002"),
        ];
        for a in &ks {
            assert_eq!(Bytes::from_encoded(a.encode().as_ref()), *a);
            let mut buf = b"seed".to_vec();
            a.encode_into(&mut buf);
            assert_eq!(&buf[4..], a.encode().as_slice());
            for b in &ks {
                assert_eq!(a.cmp(b), a.encode().cmp(&b.encode()), "{a:?} vs {b:?}");
            }
        }
        // Keys sharing a 7-byte prefix (and both overflowing the inline
        // word) share a routing hint — one shard per key cluster.
        assert_eq!(
            Bytes::from("user00000001").route_hint(),
            Bytes::from("user00000002").route_hint()
        );
        assert_ne!(
            Bytes::from("user0000").route_hint(),
            Bytes::from("item0000").route_hint()
        );
    }

    #[test]
    fn boxed_bytes_baseline_matches_bytes_semantics() {
        let a = BoxedBytes::from("alpha");
        let b = BoxedBytes::from("beta, much longer than one word");
        assert_eq!(
            BoxedBytes::from_encoded(a.encode().as_ref()),
            a,
            "encode round trip"
        );
        assert_eq!(
            a.route_hint(),
            u64::from_be_bytes(*b"alpha\0\0\0"),
            "PR 8 leading-8-raw-bytes hint"
        );
        let sa = a.clone().into_slot();
        let sb = b.clone().into_slot();
        unsafe {
            assert_eq!(BoxedBytes::slot_key(sa), a);
            assert_eq!(b.cmp_slot(sa), Ordering::Greater);
            assert_eq!(BoxedBytes::slot_cmp_slot(sa, sb), Ordering::Less);
            let sc = BoxedBytes::slot_clone(sa);
            assert_ne!(sc, sa, "boxed clone must own fresh storage");
            assert_eq!(BoxedBytes::slot_cmp_slot(sc, sa), Ordering::Equal);
            BoxedBytes::slot_free(sa);
            BoxedBytes::slot_free(sb);
            BoxedBytes::slot_free(sc);
        }
    }

    #[test]
    fn bytes_debug_is_readable() {
        assert_eq!(format!("{:?}", Bytes::from(&b"a\x00z"[..])), "b\"a\\x00z\"");
    }
}
