//! Shard routing: which shard owns a key.
//!
//! The first facade routed every key through a Fibonacci multiplicative
//! hash, which *maximally* scatters adjacent keys — key `k` and `k+1`
//! land on unrelated shards. That is exactly wrong for a cache-conscious
//! partitioning of a tree index: the benchmarks (and any clustered real
//! workload) touch key neighbourhoods, and scattering a hot
//! neighbourhood over `N` shards multiplies the hot working set by `N` —
//! `N` roots, `N` sets of upper-level nodes, `N` partially-filled hot
//! leaves, where one shard would have served the whole cluster from a
//! handful of cache lines. `results/BENCH_sharded.json` recorded that
//! loss: ART YCSB-C dropped ~33% going 1 → 8 shards on the old route.
//!
//! [`Router`] keeps the balance property of the hash but hashes *blocks*
//! instead of keys: keys sharing their top `64 - block_bits` bits (a
//! `2^block_bits`-key aligned block) route together, so a clustered
//! working set stays within one shard's trees and leaves, while block
//! numbers are still Fibonacci-spread so dense key ranges stripe evenly
//! over all shards. `block_bits = 0` degenerates to the old per-key
//! hash (every key is its own block).

/// Fibonacci multiplicative-hash constant (2^64 / φ).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Default block granularity: 64Ki-key aligned blocks.
///
/// The block size is chosen to align with *index node spans*, so that
/// partitioning never splits an interior node's key range across shards:
///
/// * ART: a 64Ki-key aligned range is exactly the span of a two-level
///   radix subtree (one byte-6 node and its byte-7 children). Smaller
///   blocks give each shard a *sparse subset* of every byte-6 node's
///   children, degrading what would be a fully-populated `Node256` into
///   a `Node48` — one extra dependent load on every lookup. Measured on
///   YCSB-C this was most of the sharding loss.
/// * B+-tree: 64Ki keys ≈ several hundred contiguous leaves, so each
///   shard's leaf runs are long and its interior fan-out dense.
///
/// The cost is granularity: a keyspace smaller than `shards × 2^16`
/// cannot stripe evenly (and below `2^16` collapses into one shard).
/// Small-keyspace users — tests, chaos harnesses — should pass an
/// explicit `block_bits` sized to their keyspace; multiples of 8 keep
/// ART radix nodes whole.
pub const DEFAULT_BLOCK_BITS: u32 = 16;

/// Maps keys to shards: locality-preserving within a block, hash-spread
/// across blocks. Cheap to copy; the facade embeds one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Router {
    /// log2 of the block size in keys (0 = per-key hashing).
    block_bits: u32,
    /// `64 - log2(shards)`: the block hash selects a shard by its top
    /// bits. 64 exactly when there is a single shard.
    shift: u32,
    /// Shard count (power of two).
    shards: usize,
}

impl Router {
    /// A router over `shards` shards (must be a power of two) with the
    /// given block granularity.
    pub fn new(shards: usize, block_bits: u32) -> Router {
        assert!(shards.is_power_of_two(), "shard count must be 2^k");
        assert!(block_bits < 64, "block_bits must leave block number bits");
        Router {
            block_bits,
            shift: 64 - shards.trailing_zeros(),
            shards,
        }
    }

    /// Shard count this router spreads over.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Block granularity (log2 keys per block).
    #[inline]
    pub fn block_bits(&self) -> u32 {
        self.block_bits
    }

    /// The block `key` belongs to: its routing unit.
    #[inline]
    pub fn block_of(&self, key: u64) -> u64 {
        key >> self.block_bits
    }

    /// The shard `key` routes to. Total: every key maps to exactly one
    /// shard, and the map is a pure function of `(key, shards,
    /// block_bits)` — stable across calls, instances and threads.
    #[inline]
    pub fn route(&self, key: u64) -> usize {
        if self.shards == 1 {
            0
        } else {
            (self.block_of(key).wrapping_mul(FIB) >> self.shift) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_is_stable_and_in_range() {
        for shards in [1usize, 2, 8, 64] {
            let r = Router::new(shards, DEFAULT_BLOCK_BITS);
            for k in (0..50_000u64).chain([u64::MAX, u64::MAX - 1, 1 << 63]) {
                let s = r.route(k);
                assert!(s < shards);
                assert_eq!(s, r.route(k));
            }
        }
    }

    #[test]
    fn blocks_route_as_units() {
        let r = Router::new(8, 8);
        for block in 0..500u64 {
            let first = r.route(block << 8);
            for k in (block << 8)..(block << 8) + 256 {
                assert_eq!(r.route(k), first, "key {k} left its block");
            }
        }
    }

    #[test]
    fn zero_block_bits_is_per_key_hashing() {
        let r = Router::new(8, 0);
        // Adjacent keys scatter: the eight keys 0..8 should not all map
        // to one shard under the per-key Fibonacci hash.
        let first = r.route(0);
        assert!((1..8u64).any(|k| r.route(k) != first));
    }

    #[test]
    fn dense_blocks_stripe_evenly() {
        // Granularity-independent striping property: sample one key per
        // block over a few thousand consecutive blocks and require every
        // shard's block share within ±25% of even, for both a fine and
        // the default (coarse) granularity.
        let shards = 8;
        for bits in [8u32, DEFAULT_BLOCK_BITS] {
            let r = Router::new(shards, bits);
            let blocks = 4096u64;
            let mut hist = vec![0u64; shards];
            for b in 0..blocks {
                hist[r.route(b << bits)] += 1;
            }
            let expect = blocks / shards as u64;
            for (s, &n) in hist.iter().enumerate() {
                assert!(
                    n > expect * 3 / 4 && n < expect * 5 / 4,
                    "bits={bits}: shard {s} holds {n} of ~{expect} blocks"
                );
            }
        }
    }
}
