//! # optiql-sharded — a hash-partitioned facade over any concurrent index
//!
//! The paper makes a single index robust under contention; a serving
//! system additionally partitions, so that independent key ranges never
//! share lock words, allocator arenas, or reclamation epochs at all
//! (Larson et al., VLDB 2012, make the case for partitioned concurrency
//! structures in main-memory engines). [`ShardedIndex`] is that
//! partitioning step, expressed as a facade:
//!
//! * keys are spread over `N` shards (a power of two) by a Fibonacci
//!   multiplicative hash of the key — cheap, and immune to the dense
//!   sequential key patterns the benchmarks preload;
//! * every shard is its own complete index behind
//!   [`ConcurrentIndex`], wrapped in `CachePadded` so neighbouring
//!   shards never false-share a cache line;
//! * each shard owns its private epoch-reclamation domain — both tree
//!   crates embed a `Collector` per instance, so per-shard domains fall
//!   out of the composition: retirement in one shard never delays
//!   reclamation in another;
//! * the facade implements [`ConcurrentIndex`] itself, so every
//!   benchmark, workload driver and test runs unmodified over `plain`
//!   and `sharded(N)` variants.
//!
//! Point operations touch exactly one shard. `scan_count` fans out:
//! hash partitioning destroys global key order, so each shard reports
//! its own count of keys ≥ `start` (each capped at `limit`) and the sum
//! is capped at `limit` — equal to the count an unpartitioned index
//! would report whenever the index is quiescent.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use crossbeam_utils::CachePadded;
use optiql_index_api::{ConcurrentIndex, IndexStats};

/// Fibonacci multiplicative-hash constant (2^64 / φ).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Default shard count: enough to split hot leaves apart without
/// multiplying memory overhead needlessly.
pub const DEFAULT_SHARDS: usize = 8;

/// A hash-partitioned index facade: `N` cache-line-padded shards of `I`,
/// each a fully independent index (locks, stats, reclaim domain).
pub struct ShardedIndex<I> {
    shards: Box<[CachePadded<I>]>,
    /// `64 - log2(shards)`: the hash selects a shard by its top bits.
    shift: u32,
}

impl<I: ConcurrentIndex + Default> ShardedIndex<I> {
    /// A facade over `shards` default-constructed shards. `shards` is
    /// rounded up to the next power of two (minimum 1).
    pub fn new(shards: usize) -> Self {
        Self::with_shards(shards, |_| I::default())
    }
}

impl<I: ConcurrentIndex> ShardedIndex<I> {
    /// A facade over `shards` shards built by `make` (called with the
    /// shard number). `shards` is rounded up to the next power of two
    /// (minimum 1) so shard selection is a shift, not a division.
    pub fn with_shards(shards: usize, mut make: impl FnMut(usize) -> I) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards: Box<[CachePadded<I>]> = (0..n).map(|i| CachePadded::new(make(i))).collect();
        ShardedIndex {
            shards,
            shift: 64 - n.trailing_zeros(),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard number `key` maps to.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            (key.wrapping_mul(FIB) >> self.shift) as usize
        }
    }

    #[inline]
    fn shard(&self, key: u64) -> &I {
        &self.shards[self.shard_of(key)]
    }

    /// Visit every shard (maintenance hooks: reclamation flushes,
    /// per-shard stats, invariant checks).
    pub fn for_each_shard(&self, mut f: impl FnMut(usize, &I)) {
        for (i, s) in self.shards.iter().enumerate() {
            f(i, s);
        }
    }

    /// Merged range scan driven through the shards' `scan_count`-style
    /// fan-out; see the module docs for the quiescent-equality argument.
    fn fanout_scan_count(&self, start: u64, limit: usize) -> usize {
        self.shards
            .iter()
            .map(|s| s.scan_count(start, limit))
            .sum::<usize>()
            .min(limit)
    }
}

impl<I: ConcurrentIndex> ConcurrentIndex for ShardedIndex<I> {
    #[inline]
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.shard(k).insert(k, v)
    }
    #[inline]
    fn update(&self, k: u64, v: u64) -> Option<u64> {
        self.shard(k).update(k, v)
    }
    #[inline]
    fn lookup(&self, k: u64) -> Option<u64> {
        self.shard(k).lookup(k)
    }
    #[inline]
    fn remove(&self, k: u64) -> Option<u64> {
        self.shard(k).remove(k)
    }
    fn scan_count(&self, start: u64, limit: usize) -> usize {
        self.fanout_scan_count(start, limit)
    }
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }
    fn index_stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        for s in self.shards.iter() {
            total.merge(s.index_stats());
        }
        total
    }
    /// Partition the batch by shard, dispatch one sub-batch per shard (so
    /// each shard's pipelined engine sees a dense batch), and scatter the
    /// results back to their original positions.
    fn multi_lookup(&self, keys: &[u64]) -> Vec<Option<u64>> {
        if self.shards.len() == 1 {
            return self.shards[0].multi_lookup(keys);
        }
        let n = self.shards.len();
        let mut sub: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut pos: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &k) in keys.iter().enumerate() {
            let s = self.shard_of(k);
            sub[s].push(k);
            pos[s].push(i);
        }
        let mut out = vec![None; keys.len()];
        for (s, shard) in self.shards.iter().enumerate() {
            if sub[s].is_empty() {
                continue;
            }
            let res = shard.multi_lookup(&sub[s]);
            for (&i, r) in pos[s].iter().zip(res) {
                out[i] = r;
            }
        }
        out
    }
    /// As [`multi_lookup`](ConcurrentIndex::multi_lookup), for inserts.
    /// Order within each shard's sub-batch follows batch order, and equal
    /// keys always hash to the same shard, so the in-order semantics of
    /// duplicate keys are preserved across the partition.
    fn multi_insert(&self, pairs: &[(u64, u64)]) -> Vec<Option<u64>> {
        if self.shards.len() == 1 {
            return self.shards[0].multi_insert(pairs);
        }
        let n = self.shards.len();
        let mut sub: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
        let mut pos: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &(k, v)) in pairs.iter().enumerate() {
            let s = self.shard_of(k);
            sub[s].push((k, v));
            pos[s].push(i);
        }
        let mut out = vec![None; pairs.len()];
        for (s, shard) in self.shards.iter().enumerate() {
            if sub[s].is_empty() {
                continue;
            }
            let res = shard.multi_insert(&sub[s]);
            for (&i, r) in pos[s].iter().zip(res) {
                out[i] = r;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optiql_index_api::model::ModelIndex;

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        for (req, got) in [(0, 1), (1, 1), (2, 2), (3, 4), (8, 8), (9, 16)] {
            let s: ShardedIndex<ModelIndex> = ShardedIndex::new(req);
            assert_eq!(s.shard_count(), got, "requested {req}");
        }
    }

    #[test]
    fn every_key_maps_to_a_valid_stable_shard() {
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(8);
        for k in (0..10_000u64).chain([u64::MAX, u64::MAX - 1, 1 << 63]) {
            let sh = s.shard_of(k);
            assert!(sh < 8);
            assert_eq!(sh, s.shard_of(k), "shard mapping must be stable");
        }
    }

    #[test]
    fn dense_keys_spread_over_shards() {
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(8);
        let mut hist = [0usize; 8];
        for k in 0..8_000u64 {
            hist[s.shard_of(k)] += 1;
        }
        for (i, &n) in hist.iter().enumerate() {
            assert!(
                (500..=1_500).contains(&n),
                "dense keys skewed: shard {i} got {n}/8000"
            );
        }
    }

    #[test]
    fn single_shard_facade_degenerates_to_the_inner_index() {
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(1);
        s.insert(u64::MAX, 1);
        s.insert(0, 2);
        assert_eq!(s.shard_of(u64::MAX), 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.scan_count(0, 10), 2);
    }

    #[test]
    fn point_ops_round_trip_across_shards() {
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(4);
        for k in 0..1_000u64 {
            assert_eq!(s.insert(k, k + 1), None);
        }
        assert_eq!(s.len(), 1_000);
        for k in 0..1_000u64 {
            assert_eq!(s.lookup(k), Some(k + 1));
            assert_eq!(s.update(k, k + 2), Some(k + 1));
        }
        assert_eq!(s.update(5_000, 1), None, "update never inserts");
        for k in 0..1_000u64 {
            assert_eq!(s.remove(k), Some(k + 2));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn scan_count_merges_shards_and_respects_limit() {
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(4);
        for k in 0..100u64 {
            s.insert(k, k);
        }
        assert_eq!(s.scan_count(0, 1_000), 100);
        assert_eq!(s.scan_count(0, 17), 17, "limit caps the merged count");
        assert_eq!(s.scan_count(90, 1_000), 10);
        assert_eq!(s.scan_count(100, 1_000), 0);
    }

    #[test]
    fn multi_ops_preserve_batch_order_across_shards() {
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(4);
        let pairs: Vec<(u64, u64)> = (0..100u64).map(|k| (k, k + 1)).collect();
        assert!(s.multi_insert(&pairs).iter().all(|r| r.is_none()));
        // Overwrite batch with an intra-batch duplicate: the second write
        // to key 7 must observe the first one's value.
        let got = s.multi_insert(&[(7, 70), (7, 71), (200, 1)]);
        assert_eq!(got, vec![Some(8), Some(70), None]);
        let keys: Vec<u64> = vec![99, 7, 200, 7, 1_000, 0];
        assert_eq!(
            s.multi_lookup(&keys),
            vec![Some(100), Some(71), Some(1), Some(71), None, Some(1)]
        );
        assert_eq!(s.len(), 101);
    }

    #[test]
    fn index_stats_aggregate_over_shards() {
        // ModelIndex reports default stats; the aggregate must stay
        // default (and not, say, panic on merge).
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(4);
        s.insert(1, 1);
        assert_eq!(s.index_stats(), IndexStats::default());
        let mut visited = 0;
        s.for_each_shard(|_, _| visited += 1);
        assert_eq!(visited, 4);
    }
}
