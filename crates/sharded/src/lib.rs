//! # optiql-sharded — a partitioned facade over any concurrent index
//!
//! The paper makes a single index robust under contention; a serving
//! system additionally partitions, so that independent key ranges never
//! share lock words, allocator arenas, or reclamation epochs at all
//! (Larson et al., VLDB 2012, make the case for partitioned concurrency
//! structures in main-memory engines). [`ShardedIndex`] is that
//! partitioning step, expressed as a facade:
//!
//! * keys are spread over `N` shards (a power of two) by a
//!   **cache-conscious block [`Router`]**: keys sharing a
//!   `2^block_bits`-key aligned block route together (clustered working
//!   sets keep their leaf/subtree locality inside one shard) while block
//!   numbers are Fibonacci-spread so dense ranges stripe evenly over all
//!   shards — the original per-key Fibonacci route (still available as
//!   `block_bits = 0`) scattered hot neighbourhoods over every shard and
//!   measurably *lost* throughput to cache dilution;
//! * every shard is its own complete index behind
//!   [`ConcurrentIndex`], wrapped in `CachePadded` so neighbouring
//!   shards never false-share a cache line;
//! * each shard owns its private epoch-reclamation domain — both tree
//!   crates embed a `Collector` per instance, so per-shard domains fall
//!   out of the composition: retirement in one shard never delays
//!   reclamation in another. Batched operations amortize the domain
//!   pins: each shard's sub-batch runs under **one** outer pin (via
//!   [`ConcurrentIndex::reclaim_handle`]), making the per-op pins inside
//!   nested no-fence increments;
//! * opt-in [`ShardAffinity`] places shards on cores (topology probed,
//!   gracefully degrading) so thread-per-core drivers can pin workers to
//!   the shards they own;
//! * the facade implements [`ConcurrentIndex`] itself, so every
//!   benchmark, workload driver and test runs unmodified over `plain`
//!   and `sharded(N)` variants.
//!
//! Point operations touch exactly one shard. `multi_lookup` /
//! `multi_insert` **partition-then-pipeline**: one counting pass buckets
//! the batch into per-shard sub-batches (flat buffers, batch order
//! preserved within each shard), each shard runs its software-pipelined
//! engine over a dense sub-batch under a single reclaim pin, and results
//! scatter back to their original positions. `scan_count` fans out:
//! hash partitioning destroys global key order, so each shard reports
//! its own count of keys ≥ `start` (each capped at `limit`) and the sum
//! is capped at `limit` — equal to the count an unpartitioned index
//! would report whenever the index is quiescent (see the method docs for
//! why the per-shard caps keep that equality exact). `range` restores
//! global key order: every shard opens its own streaming iterator over
//! the same bounds and the facade k-way-merges the heads, so consumers
//! see one ascending, shard-transparent stream.
//!
//! The facade is key-generic like everything above it: routing uses
//! [`IndexKey::route_hint`] (the key itself for `u64`; for byte strings
//! the precomputed inline/sort word — a field load, no byte shuffling on
//! the routing path), so a `ShardedIndex<ArtTree<L, Bytes>>` works
//! exactly like the integer one.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod affinity;
mod route;

pub use affinity::ShardAffinity;
pub use route::{Router, DEFAULT_BLOCK_BITS};

use std::ops::Bound;

use crossbeam_utils::CachePadded;
use optiql_index_api::{bounds_nonempty, ConcurrentIndex, IndexKey, IndexStats, RangeIter};

/// Default shard count: enough to split hot leaves apart without
/// multiplying memory overhead needlessly.
pub const DEFAULT_SHARDS: usize = 8;

/// A partitioned index facade: `N` cache-line-padded shards of `I`,
/// each a fully independent index (locks, stats, reclaim domain), with a
/// locality-preserving block router deciding ownership.
pub struct ShardedIndex<I> {
    shards: Box<[CachePadded<I>]>,
    router: Router,
}

impl<I: Default> ShardedIndex<I> {
    /// A facade over `shards` default-constructed shards with the
    /// default block granularity. `shards` is rounded up to the next
    /// power of two (minimum 1).
    pub fn new(shards: usize) -> Self {
        Self::with_shards(shards, |_| I::default())
    }

    /// As [`new`](Self::new) with an explicit block granularity
    /// (`block_bits = 0` reproduces the original per-key Fibonacci
    /// scatter).
    pub fn with_block_bits(shards: usize, block_bits: u32) -> Self {
        Self::with_config(shards, block_bits, |_| I::default())
    }
}

impl<I> ShardedIndex<I> {
    /// A facade over `shards` shards built by `make` (called with the
    /// shard number), default block granularity. `shards` is rounded up
    /// to the next power of two (minimum 1) so shard selection is a
    /// shift, not a division.
    pub fn with_shards(shards: usize, make: impl FnMut(usize) -> I) -> Self {
        Self::with_config(shards, DEFAULT_BLOCK_BITS, make)
    }

    /// The fully explicit constructor: shard count (rounded up to a
    /// power of two, minimum 1), block granularity, and a per-shard
    /// builder.
    pub fn with_config(shards: usize, block_bits: u32, mut make: impl FnMut(usize) -> I) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards: Box<[CachePadded<I>]> = (0..n).map(|i| CachePadded::new(make(i))).collect();
        ShardedIndex {
            shards,
            router: Router::new(n, block_bits),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The router mapping keys to shards.
    pub fn router(&self) -> Router {
        self.router
    }

    /// Probe the host topology and place this facade's shards on cores
    /// (round-robin). See [`ShardAffinity`].
    pub fn affinity(&self) -> ShardAffinity {
        ShardAffinity::probe(self.shards.len())
    }

    /// The shard number `key` maps to.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        self.router.route(key)
    }

    /// The shard number a generic key maps to: routing happens on the
    /// key's [`IndexKey::route_hint`], so for `u64` this is exactly
    /// [`shard_of`](Self::shard_of) and for byte strings the hint's
    /// leading raw bytes keep lexicographic neighbours in one block.
    #[inline]
    pub fn shard_of_key<K: IndexKey>(&self, key: &K) -> usize {
        self.router.route(key.route_hint())
    }

    /// Direct access to shard `i` (affine drivers address the shards
    /// they own; panics when out of range).
    pub fn shard_at(&self, i: usize) -> &I {
        &self.shards[i]
    }

    #[inline]
    fn shard<K: IndexKey>(&self, key: &K) -> &I {
        &self.shards[self.shard_of_key(key)]
    }

    /// Visit every shard (maintenance hooks: reclamation flushes,
    /// per-shard stats, invariant checks).
    pub fn for_each_shard(&self, mut f: impl FnMut(usize, &I)) {
        for (i, s) in self.shards.iter().enumerate() {
            f(i, s);
        }
    }

    /// Bucket a batch into per-shard sub-batches using one counting pass
    /// and flat buffers: `hints` are the batch keys' route hints, in
    /// batch order. Returns `(offsets, positions)` where shard `s`'s
    /// sub-batch is described by `positions[offsets[s] .. offsets[s + 1]]`
    /// — each entry the index of one of its keys in the original batch.
    /// Batch order is preserved within each shard (the scatter pass walks
    /// the batch in order), which is what keeps duplicate-key in-order
    /// semantics intact across the partition.
    fn partition(&self, hints: impl ExactSizeIterator<Item = u64> + Clone) -> PartitionedBatch {
        let n = self.shards.len();
        let mut offsets = vec![0usize; n + 1];
        for h in hints.clone() {
            offsets[self.router.route(h) + 1] += 1;
        }
        for s in 0..n {
            offsets[s + 1] += offsets[s];
        }
        let mut cursor = offsets.clone();
        let mut positions = vec![0usize; hints.len()];
        for (i, h) in hints.enumerate() {
            let c = &mut cursor[self.router.route(h)];
            positions[*c] = i;
            *c += 1;
        }
        PartitionedBatch { offsets, positions }
    }
}

/// Output of [`ShardedIndex::partition`].
struct PartitionedBatch {
    offsets: Vec<usize>,
    positions: Vec<usize>,
}

/// The k-way merge behind the facade's [`ConcurrentIndex::range`]: one
/// streaming iterator per shard (all opened over the same bounds), heads
/// compared on demand. Shards partition the key space, so keys are
/// globally unique and no tie-break is needed; each `next` is a linear
/// scan over at most `N` peeked heads — `N` is small (≤ 64) and the
/// per-shard iterators do the heavy (chunked, validated) lifting.
struct MergeRange<'a, K> {
    heads: Vec<std::iter::Peekable<RangeIter<'a, K>>>,
}

impl<K: Ord + Clone> Iterator for MergeRange<'_, K> {
    type Item = (K, u64);

    fn next(&mut self) -> Option<(K, u64)> {
        let mut best: Option<(usize, K)> = None;
        for (i, head) in self.heads.iter_mut().enumerate() {
            if let Some((k, _)) = head.peek() {
                if best.as_ref().map_or(true, |(_, bk)| k < bk) {
                    best = Some((i, k.clone()));
                }
            }
        }
        self.heads[best?.0].next()
    }
}

impl<K: IndexKey, I: ConcurrentIndex<K>> ConcurrentIndex<K> for ShardedIndex<I> {
    #[inline]
    fn insert(&self, k: K, v: u64) -> Option<u64> {
        self.shard(&k).insert(k, v)
    }
    #[inline]
    fn update(&self, k: K, v: u64) -> Option<u64> {
        self.shard(&k).update(k, v)
    }
    #[inline]
    fn lookup(&self, k: K) -> Option<u64> {
        self.shard(&k).lookup(k)
    }
    #[inline]
    fn remove(&self, k: K) -> Option<u64> {
        self.shard(&k).remove(k)
    }
    /// Fan the count out and merge **as if counted in global key order**:
    /// each shard reports how many of its keys are ≥ `start`, capped at
    /// `limit`, and the sum is capped at `limit`. The caps cost no
    /// precision: if the true global count `T` is below `limit` no shard
    /// hits its cap, so the sum is exactly `T`; if `T ≥ limit` the sum of
    /// (possibly capped) per-shard counts is still ≥ `limit` — routing
    /// only partitions the matching keys — so the capped result is
    /// exactly `limit`. Either way the answer equals what an
    /// unpartitioned index would report for the first `limit` matching
    /// keys in ascending order, whenever the index is quiescent. The
    /// shard-boundary regression tests pin this down for starts that sit
    /// exactly on, just below, and just above router block edges.
    fn scan_count(&self, start: K, limit: usize) -> usize {
        self.shards
            .iter()
            .map(|s| s.scan_count(start.clone(), limit))
            .sum::<usize>()
            .min(limit)
    }
    /// Open one streaming iterator per shard over the same bounds and
    /// k-way-merge the heads, restoring the global ascending key order
    /// that routing scattered. Each per-shard iterator keeps its own
    /// OLC revalidation protocol; the merge holds no locks.
    fn range(&self, start: Bound<K>, end: Bound<K>) -> RangeIter<'_, K> {
        if !bounds_nonempty(&start, &end) {
            return RangeIter::empty();
        }
        let heads = self
            .shards
            .iter()
            .map(|s| s.range(start.clone(), end.clone()).peekable())
            .collect();
        RangeIter::new(MergeRange { heads })
    }
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }
    fn index_stats(&self) -> IndexStats {
        let mut total = IndexStats::default();
        for s in self.shards.iter() {
            total.merge(s.index_stats());
        }
        total
    }
    /// Partition the batch by shard, dispatch one sub-batch per shard (so
    /// each shard's pipelined engine sees a dense batch) under one
    /// amortized reclaim pin per shard, and scatter the results back to
    /// their original positions.
    fn multi_lookup(&self, keys: &[K]) -> Vec<Option<u64>> {
        if self.shards.len() == 1 {
            return self.shards[0].multi_lookup(keys);
        }
        if let [k] = keys {
            // A one-key batch routes like a point op; the partition's
            // flat buffers would cost more than the lookup.
            return vec![self.shard(k).lookup(k.clone())];
        }
        let part = self.partition(keys.iter().map(|k| k.route_hint()));
        let mut out = vec![None; keys.len()];
        let mut sub: Vec<K> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            let range = part.offsets[s]..part.offsets[s + 1];
            if range.is_empty() {
                continue;
            }
            sub.clear();
            sub.extend(
                part.positions[range.clone()]
                    .iter()
                    .map(|&i| keys[i].clone()),
            );
            let _pin = shard.reclaim_handle().map(|h| h.pin());
            let res = shard.multi_lookup(&sub);
            for (&i, r) in part.positions[range].iter().zip(res) {
                out[i] = r;
            }
        }
        out
    }
    /// As [`multi_lookup`](ConcurrentIndex::multi_lookup), for inserts.
    /// Order within each shard's sub-batch follows batch order, and equal
    /// keys always route to the same shard, so the in-order semantics of
    /// duplicate keys are preserved across the partition.
    fn multi_insert(&self, pairs: &[(K, u64)]) -> Vec<Option<u64>> {
        if self.shards.len() == 1 {
            return self.shards[0].multi_insert(pairs);
        }
        if let [(k, v)] = pairs {
            return vec![self.shard(k).insert(k.clone(), *v)];
        }
        let part = self.partition(pairs.iter().map(|(k, _)| k.route_hint()));
        let mut out = vec![None; pairs.len()];
        let mut sub: Vec<(K, u64)> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            let range = part.offsets[s]..part.offsets[s + 1];
            if range.is_empty() {
                continue;
            }
            sub.clear();
            sub.extend(
                part.positions[range.clone()]
                    .iter()
                    .map(|&i| pairs[i].clone()),
            );
            let _pin = shard.reclaim_handle().map(|h| h.pin());
            let res = shard.multi_insert(&sub);
            for (&i, r) in part.positions[range].iter().zip(res) {
                out[i] = r;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optiql_index_api::model::ModelIndex;

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        for (req, got) in [(0, 1), (1, 1), (2, 2), (3, 4), (8, 8), (9, 16)] {
            let s: ShardedIndex<ModelIndex> = ShardedIndex::new(req);
            assert_eq!(s.shard_count(), got, "requested {req}");
        }
    }

    #[test]
    fn every_key_maps_to_a_valid_stable_shard() {
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(8);
        for k in (0..10_000u64).chain([u64::MAX, u64::MAX - 1, 1 << 63]) {
            let sh = s.shard_of(k);
            assert!(sh < 8);
            assert_eq!(sh, s.shard_of(k), "shard mapping must be stable");
        }
    }

    #[test]
    fn dense_keys_spread_over_shards() {
        // Explicit fine granularity: 512k keys = 2000 × 256-key blocks,
        // plenty to stripe. (The coarse default needs a multi-million-key
        // space to balance; route.rs covers that property per block.)
        let s: ShardedIndex<ModelIndex> = ShardedIndex::with_block_bits(8, 8);
        let mut hist = [0usize; 8];
        for k in 0..512_000u64 {
            hist[s.shard_of(k)] += 1;
        }
        for (i, &n) in hist.iter().enumerate() {
            assert!(
                (48_000..=80_000).contains(&n),
                "dense keys skewed: shard {i} got {n}/512000"
            );
        }
    }

    #[test]
    fn blocks_stay_whole() {
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(8);
        let bits = s.router().block_bits();
        assert_eq!(bits, DEFAULT_BLOCK_BITS);
        let block = 1u64 << bits;
        for b in 0..64u64 {
            let owner = s.shard_of(b * block);
            // Sample within the block: ends, and a coprime stride.
            for k in (b * block..(b + 1) * block).step_by(4099) {
                assert_eq!(s.shard_of(k), owner);
            }
            assert_eq!(s.shard_of((b + 1) * block - 1), owner);
        }
    }

    #[test]
    fn zero_block_bits_reproduces_per_key_scatter() {
        let s: ShardedIndex<ModelIndex> = ShardedIndex::with_block_bits(8, 0);
        let first = s.shard_of(0);
        assert!((1..8u64).any(|k| s.shard_of(k) != first));
    }

    #[test]
    fn single_shard_facade_degenerates_to_the_inner_index() {
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(1);
        s.insert(u64::MAX, 1);
        s.insert(0, 2);
        assert_eq!(s.shard_of(u64::MAX), 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.scan_count(0, 10), 2);
    }

    #[test]
    fn point_ops_round_trip_across_shards() {
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(4);
        for k in 0..1_000u64 {
            assert_eq!(s.insert(k, k + 1), None);
        }
        assert_eq!(s.len(), 1_000);
        for k in 0..1_000u64 {
            assert_eq!(s.lookup(k), Some(k + 1));
            assert_eq!(s.update(k, k + 2), Some(k + 1));
        }
        assert_eq!(s.update(5_000, 1), None, "update never inserts");
        for k in 0..1_000u64 {
            assert_eq!(s.remove(k), Some(k + 2));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn scan_count_merges_shards_and_respects_limit() {
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(4);
        for k in 0..100u64 {
            s.insert(k, k);
        }
        assert_eq!(s.scan_count(0, 1_000), 100);
        assert_eq!(s.scan_count(0, 17), 17, "limit caps the merged count");
        assert_eq!(s.scan_count(90, 1_000), 10);
        assert_eq!(s.scan_count(100, 1_000), 0);
    }

    #[test]
    fn multi_ops_preserve_batch_order_across_shards() {
        // Wide key spread so the batch actually spans shards under the
        // block router.
        let spread = |i: u64| i << DEFAULT_BLOCK_BITS;
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(4);
        let pairs: Vec<(u64, u64)> = (0..100u64).map(|k| (spread(k), k + 1)).collect();
        assert!(s.multi_insert(&pairs).iter().all(|r| r.is_none()));
        // Overwrite batch with an intra-batch duplicate: the second write
        // to key spread(7) must observe the first one's value.
        let got = s.multi_insert(&[(spread(7), 70), (spread(7), 71), (spread(200), 1)]);
        assert_eq!(got, vec![Some(8), Some(70), None]);
        let keys: Vec<u64> = vec![
            spread(99),
            spread(7),
            spread(200),
            spread(7),
            spread(1_000),
            spread(0),
        ];
        assert_eq!(
            s.multi_lookup(&keys),
            vec![Some(100), Some(71), Some(1), Some(71), None, Some(1)]
        );
        assert_eq!(s.len(), 101);
    }

    #[test]
    fn scan_count_matches_global_order_at_shard_boundaries() {
        // Regression: starts sitting exactly on, one below, and one above
        // a router block edge. The block edge is where a key and its
        // successor route to *different* shards, so an off-by-one in the
        // per-shard `>= start` comparison (e.g. a shard counting from its
        // own smallest key instead of the caller's start) shows up as a
        // merged count that disagrees with an unpartitioned index.
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(4);
        let flat = ModelIndex::new();
        let block = 1u64 << s.router().block_bits();
        // Populate a band straddling three block edges.
        for k in (block - 20)..(4 * block + 20) {
            s.insert(k, k);
            flat.insert(k, k);
        }
        for edge in 1..=4u64 {
            let e = edge * block;
            for start in [e - 1, e, e + 1] {
                for limit in [1usize, 2, 7, 10_000] {
                    assert_eq!(
                        s.scan_count(start, limit),
                        flat.scan_count(start, limit),
                        "start={start} limit={limit} (block edge {e})"
                    );
                }
            }
        }
    }

    #[test]
    fn range_merges_shards_in_global_key_order() {
        let s: ShardedIndex<ModelIndex> = ShardedIndex::with_block_bits(8, 2);
        // Fine blocks (4 keys) so consecutive keys genuinely interleave
        // across shards and the merge has to reorder them.
        for k in 0..1_000u64 {
            s.insert(k, k + 1);
        }
        let got: Vec<(u64, u64)> = s.range(Bound::Included(37), Bound::Excluded(911)).collect();
        let want: Vec<(u64, u64)> = (37..911).map(|k| (k, k + 1)).collect();
        assert_eq!(got, want);
        // Degenerate and empty bounds.
        assert_eq!(s.range(Bound::Excluded(5), Bound::Included(5)).count(), 0);
        assert_eq!(s.range(Bound::Included(2_000), Bound::Unbounded).count(), 0);
    }

    #[test]
    fn byte_keys_route_and_merge() {
        use optiql_index_api::Bytes;
        let s: ShardedIndex<ModelIndex<Bytes>> = ShardedIndex::new(4);
        let keys: Vec<Bytes> = (0..200u32)
            .map(|i| Bytes::from(format!("user{i:04}").as_bytes()))
            .collect();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(s.insert(k.clone(), i as u64), None);
        }
        assert_eq!(s.len(), 200);
        assert_eq!(s.lookup(Bytes::from("user0042")), Some(42));
        // Merged stream comes back in lexicographic order regardless of
        // which shard owns which key.
        let got: Vec<Bytes> = s
            .range(Bound::Included(Bytes::from("user0100")), Bound::Unbounded)
            .map(|(k, _)| k)
            .collect();
        let want: Vec<Bytes> = (100..200u32)
            .map(|i| Bytes::from(format!("user{i:04}").as_bytes()))
            .collect();
        assert_eq!(got, want);
        assert_eq!(s.scan_count(Bytes::from("user0150"), 1_000), 50);
        let got = s.multi_lookup(&[Bytes::from("user0007"), Bytes::from("nope")]);
        assert_eq!(got, vec![Some(7), None]);
    }

    #[test]
    fn index_stats_aggregate_over_shards() {
        // ModelIndex reports default stats; the aggregate must stay
        // default (and not, say, panic on merge).
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(4);
        s.insert(1, 1);
        assert_eq!(s.index_stats(), IndexStats::default());
        let mut visited = 0;
        s.for_each_shard(|_, _| visited += 1);
        assert_eq!(visited, 4);
    }

    #[test]
    fn facade_reports_no_single_reclaim_domain() {
        let s: ShardedIndex<ModelIndex> = ShardedIndex::new(4);
        assert!(
            s.reclaim_handle().is_none(),
            "a multi-domain facade must not pretend to have one domain"
        );
    }
}
