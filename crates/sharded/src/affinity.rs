//! Opt-in shard → core affinity for thread-per-core serving.
//!
//! A sharded index scales best when each worker thread owns a subset of
//! the shards and stays on one core: the owned shards' hot nodes live in
//! that core's cache, the owned reclamation domains are the only ones the
//! thread pins, and the OS never migrates the working set. This module
//! provides the topology half of that contract:
//!
//! * [`ShardAffinity::probe`] asks the host how many logical CPUs this
//!   process may use (`available_parallelism`, which respects cpusets and
//!   container quotas) and lays shards out round-robin over them. When
//!   the probe fails or reports a single CPU, everything degrades to a
//!   deliberate no-op — single-core CI and non-Linux hosts run the same
//!   code paths, just unpinned.
//! * [`ShardAffinity::pin_to_shard`] pins the calling thread to the core
//!   a shard was placed on (Linux `sched_setaffinity`; best-effort).
//! * [`ShardAffinity::shards_of_worker`] deals shards out to a worker
//!   group round-robin, so worker `t` of `T` owns shards `{s : s ≡ t
//!   (mod T)}` — the layout the harness's affine workload mode and the
//!   planned network server both use.

/// Shard-to-core placement for one sharded index.
#[derive(Debug, Clone)]
pub struct ShardAffinity {
    /// Logical CPUs available to this process (≥ 1).
    cores: usize,
    /// Shard → core, round-robin over `cores`.
    map: Vec<usize>,
}

impl ShardAffinity {
    /// Probe the host topology and place `shards` shards round-robin
    /// over the available cores. Never fails: a failed or degenerate
    /// probe yields a single-core placement whose pinning calls are
    /// no-ops.
    pub fn probe(shards: usize) -> ShardAffinity {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ShardAffinity {
            cores,
            map: (0..shards.max(1)).map(|s| s % cores).collect(),
        }
    }

    /// Logical CPUs the probe found (≥ 1).
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Number of shards placed.
    pub fn shards(&self) -> usize {
        self.map.len()
    }

    /// The core shard `shard` is placed on.
    pub fn core_of(&self, shard: usize) -> usize {
        self.map[shard % self.map.len()]
    }

    /// True when pinning can do anything at all on this host: more than
    /// one core, and a platform with an affinity syscall.
    pub fn can_pin(&self) -> bool {
        cfg!(target_os = "linux") && self.cores > 1
    }

    /// Pin the calling thread to the core shard `shard` is placed on.
    /// Best-effort: returns `false` (and changes nothing) on single-core
    /// hosts, non-Linux platforms, or if the affinity call is refused —
    /// callers proceed unpinned.
    pub fn pin_to_shard(&self, shard: usize) -> bool {
        if !self.can_pin() {
            return false;
        }
        pin_to_core(self.core_of(shard))
    }

    /// The shards worker `worker` of a `workers`-thread group owns:
    /// round-robin, `{s : s ≡ worker (mod workers)}`. Every shard is
    /// owned by exactly one worker; with more workers than shards the
    /// excess workers share ownership by wrapping around.
    pub fn shards_of_worker(&self, worker: usize, workers: usize) -> Vec<usize> {
        let workers = workers.max(1);
        let n = self.map.len();
        if workers > n {
            return vec![worker % n];
        }
        (0..n).filter(|s| s % workers == worker % workers).collect()
    }
}

#[cfg(target_os = "linux")]
fn pin_to_core(core: usize) -> bool {
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_SET(core, &mut set);
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_to_core(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_never_fails() {
        let a = ShardAffinity::probe(8);
        assert!(a.cores() >= 1);
        assert_eq!(a.shards(), 8);
        for s in 0..8 {
            assert!(a.core_of(s) < a.cores());
        }
    }

    #[test]
    fn zero_shards_degrades_to_one() {
        let a = ShardAffinity::probe(0);
        assert_eq!(a.shards(), 1);
        assert_eq!(a.core_of(0), 0);
    }

    #[test]
    fn workers_partition_the_shards() {
        let a = ShardAffinity::probe(8);
        for workers in [1usize, 2, 3, 4, 8] {
            let mut owned: Vec<usize> = (0..workers)
                .flat_map(|w| a.shards_of_worker(w, workers))
                .collect();
            owned.sort_unstable();
            assert_eq!(owned, (0..8).collect::<Vec<_>>(), "workers={workers}");
        }
        // More workers than shards: wrap around, stay in range.
        for w in 0..16 {
            let s = a.shards_of_worker(w, 16);
            assert_eq!(s.len(), 1);
            assert!(s[0] < 8);
        }
    }

    #[test]
    fn pinning_is_best_effort() {
        let a = ShardAffinity::probe(4);
        // Must not crash whatever the host; success implies pinnability.
        let pinned = a.pin_to_shard(0);
        assert!(!pinned || a.can_pin());
    }
}
