//! Differential testing of batched (`multi_*`) index operations.
//!
//! The pipelined engines in both trees reorder the *schedule* of descents
//! (round-robin groups with prefetch between turns) but must not reorder
//! the *semantics*: a `multi_insert` is equivalent to applying the pairs
//! in batch order, and `multi_lookup` returns results positionally.
//! These properties are checked against `ModelIndex` (a `Mutex<BTreeMap>`)
//! for both trees, plain and behind the sharded facade — with duplicate
//! keys inside one batch and batch lengths well beyond the pipeline group
//! size of 8, so group boundaries, the intra-group duplicate deferral path
//! and the shard partition/scatter path are all exercised.

use proptest::prelude::*;

use optiql_art::ArtOptiQL;
use optiql_btree::BTreeOptiQL;
use optiql_index_api::model::ModelIndex;
use optiql_index_api::ConcurrentIndex;
use optiql_sharded::ShardedIndex;

/// One round of the differential driver: an insert batch and a lookup batch.
type Round = (Vec<(u64, u64)>, Vec<u64>);

/// Apply interleaved insert/lookup batches to `idx` and to the model,
/// comparing every result element-wise.
fn check_batches<I: ConcurrentIndex>(idx: &I, batches: &[Round]) {
    let model = ModelIndex::new();
    for (round, (pairs, keys)) in batches.iter().enumerate() {
        let got = idx.multi_insert(pairs);
        let want = model.multi_insert(pairs);
        assert_eq!(got, want, "multi_insert results, round {round}");
        let got = idx.multi_lookup(keys);
        let want = model.multi_lookup(keys);
        assert_eq!(got, want, "multi_lookup results, round {round}");
    }
    assert_eq!(idx.len(), model.len(), "final size");
}

/// Small key space so batches collide with themselves (duplicate keys in
/// one batch) and with earlier rounds (overwrites returning Some).
fn batch_strategy() -> impl Strategy<Value = Vec<Round>> {
    let pairs = prop::collection::vec((0..192u64, any::<u64>()), 0..40);
    let keys = prop::collection::vec(0..256u64, 0..40);
    prop::collection::vec((pairs, keys), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Small B+-tree nodes force splits within tiny keyspaces, so the
    // pipelined insert's SMO fallback path runs, not just the happy path.
    #[test]
    fn btree_multi_matches_model(batches in batch_strategy()) {
        let t: BTreeOptiQL<4, 4> = BTreeOptiQL::new();
        check_batches(&t, &batches);
    }

    #[test]
    fn art_multi_matches_model(batches in batch_strategy()) {
        let t = ArtOptiQL::new();
        check_batches(&t, &batches);
    }

    // The sharded facade partitions each batch by shard and scatters the
    // results back; order (including duplicate-key order) must survive.
    // 4-key blocks keep the 256-key space striping over all four shards.
    #[test]
    fn sharded_btree_multi_matches_model(batches in batch_strategy()) {
        let s: ShardedIndex<BTreeOptiQL<4, 4>> = ShardedIndex::with_block_bits(4, 2);
        check_batches(&s, &batches);
    }

    #[test]
    fn sharded_art_multi_matches_model(batches in batch_strategy()) {
        let s: ShardedIndex<ArtOptiQL> = ShardedIndex::with_block_bits(4, 2);
        check_batches(&s, &batches);
    }
}

/// Deterministic smoke: a batch much larger than the pipeline group, with
/// duplicates straddling group boundaries, against full-size trees.
#[test]
fn large_batch_with_cross_group_duplicates() {
    fn drive<I: ConcurrentIndex>(idx: &I) {
        // 100 inserts; key k repeated at positions k and k + 50 for k < 50.
        let pairs: Vec<(u64, u64)> = (0..100u64).map(|i| (i % 50, i)).collect();
        let res = idx.multi_insert(&pairs);
        for (i, r) in res.iter().enumerate() {
            if i < 50 {
                assert_eq!(*r, None, "first write of key {i}");
            } else {
                assert_eq!(*r, Some(i as u64 - 50), "second write sees the first");
            }
        }
        assert_eq!(idx.len(), 50);
        let keys: Vec<u64> = (0..60u64).rev().collect();
        let got = idx.multi_lookup(&keys);
        for (&k, r) in keys.iter().zip(&got) {
            let want = (k < 50).then_some(k + 50);
            assert_eq!(*r, want, "lookup {k}");
        }
    }
    let bt: BTreeOptiQL = BTreeOptiQL::new();
    drive(&bt);
    drive(&ArtOptiQL::new());
    drive(&ShardedIndex::<BTreeOptiQL>::with_block_bits(4, 2));
    drive(&ShardedIndex::<ArtOptiQL>::with_block_bits(4, 2));
}

/// Regression: dense keys crossing a byte boundary force an ART prefix
/// split *while sibling ops of the same pipeline group hold state below
/// the split point*. A stale in-flight op must restart, not descend with
/// an out-of-date depth (this once drove the lazy-expansion divergence
/// scan past the end of the key).
#[test]
fn art_batched_inserts_across_prefix_splits() {
    let art = ArtOptiQL::new();
    let pairs: Vec<(u64, u64)> = (65_000..67_000u64).map(|k| (k, k + 1)).collect();
    for chunk in pairs.chunks(4) {
        let r = art.multi_insert(chunk);
        assert!(r.iter().all(|x| x.is_none()), "fresh keys: {r:?}");
    }
    assert_eq!(art.len(), 2_000);
    let keys: Vec<u64> = (64_900..67_100u64).collect();
    for (got, &k) in art.multi_lookup(&keys).iter().zip(&keys) {
        let want = (65_000..67_000).contains(&k).then(|| k + 1);
        assert_eq!(*got, want, "key {k}");
    }
}
