//! Differential testing of the sharded facade.
//!
//! Property tests check that `ShardedIndex<I>` over real trees behaves
//! exactly like a `Mutex<BTreeMap>` model under arbitrary single-threaded
//! operation sequences — the facade must be invisible apart from
//! partitioning. A concurrent test then drives disjoint and overlapping
//! key sets through the shards and verifies the final state.

use std::collections::BTreeMap;

use proptest::prelude::*;

use optiql_art::ArtOptiQL;
use optiql_btree::BTreeOptiQL;
use optiql_index_api::ConcurrentIndex;
use optiql_sharded::ShardedIndex;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Update(u64, u64),
    Remove(u64),
    Lookup(u64),
    ScanCount(u64, usize),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_space, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..key_space, any::<u64>()).prop_map(|(k, v)| Op::Update(k, v)),
        (0..key_space).prop_map(Op::Remove),
        (0..key_space).prop_map(Op::Lookup),
        (0..key_space, 0..96usize).prop_map(|(k, n)| Op::ScanCount(k, n)),
    ]
}

fn run_model<I: ConcurrentIndex>(sharded: &ShardedIndex<I>, ops: &[Op]) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                assert_eq!(sharded.insert(k, v), model.insert(k, v), "insert {k}");
            }
            Op::Update(k, v) => {
                let expect = model.get_mut(&k).map(|slot| std::mem::replace(slot, v));
                assert_eq!(sharded.update(k, v), expect, "update {k}");
            }
            Op::Remove(k) => {
                assert_eq!(sharded.remove(k), model.remove(&k), "remove {k}");
            }
            Op::Lookup(k) => {
                assert_eq!(sharded.lookup(k), model.get(&k).copied(), "lookup {k}");
            }
            Op::ScanCount(k, n) => {
                // Hash partitioning destroys global order but not counts:
                // the merged scan_count must equal the model's.
                let expect = model.range(k..).take(n).count();
                assert_eq!(sharded.scan_count(k, n), expect, "scan_count {k} {n}");
            }
        }
    }
    assert_eq!(sharded.len(), model.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Small key space + small B+-tree nodes: ops collide across shards
    // and exercise splits/merges inside each shard. Block granularity is
    // sized to the keyspace (16-key blocks) so the 512-key space still
    // stripes over all four shards.
    #[test]
    fn sharded_btree_matches_model(ops in prop::collection::vec(op_strategy(512), 1..600)) {
        let s: ShardedIndex<BTreeOptiQL<4, 4>> = ShardedIndex::with_block_bits(4, 4);
        run_model(&s, &ops);
    }

    #[test]
    fn sharded_art_matches_model(ops in prop::collection::vec(op_strategy(512), 1..600)) {
        let s: ShardedIndex<ArtOptiQL> = ShardedIndex::with_block_bits(4, 4);
        run_model(&s, &ops);
    }

    // Shard count 1 degenerates to the plain index; the facade must be a
    // no-op wrapper there too.
    #[test]
    fn single_shard_matches_model(ops in prop::collection::vec(op_strategy(256), 1..400)) {
        let s: ShardedIndex<BTreeOptiQL<4, 4>> = ShardedIndex::new(1);
        run_model(&s, &ops);
    }

    // Wide keys stress the hash mapping (high bits significant).
    #[test]
    fn wide_keyspace_matches_model(ops in prop::collection::vec(op_strategy(u64::MAX), 1..300)) {
        let s: ShardedIndex<BTreeOptiQL<6, 6>> = ShardedIndex::new(8);
        run_model(&s, &ops);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Routing totality and stability as a property over the whole
    // configuration space: any (shards, block_bits, key) routes to
    // exactly one in-range shard, the same one every time and from any
    // equal router, and all keys of a block agree.
    #[test]
    fn every_key_routes_to_exactly_one_stable_shard(
        shards_log in 0u32..7,
        block_bits in 0u32..24,
        keys in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        let shards = 1usize << shards_log;
        let a = optiql_sharded::Router::new(shards, block_bits);
        let b = optiql_sharded::Router::new(shards, block_bits);
        for &k in &keys {
            let s = a.route(k);
            prop_assert!(s < shards, "out of range: {s} of {shards}");
            prop_assert_eq!(s, a.route(k), "unstable across calls");
            prop_assert_eq!(s, b.route(k), "unstable across instances");
            // Every key of k's block routes with it (block-aligned
            // neighbours; guard the shifts for block_bits = 0).
            if block_bits > 0 {
                let first = (k >> block_bits) << block_bits;
                prop_assert_eq!(a.route(first), s, "block start strayed");
                let last = first | ((1u64 << block_bits) - 1);
                prop_assert_eq!(a.route(last), s, "block end strayed");
            }
        }
    }
}

/// `scan_count` fan-out vs the model while the trees churn through
/// splits and collapses. Writers alternately grow and shrink their
/// ranges (forcing structure changes in every shard); between phases the
/// threads quiesce and the merged fan-out count must equal a model
/// rebuilt from the ground truth — hash partitioning must never double-
/// or under-count across shard boundaries, whatever shapes the churn
/// left behind.
#[test]
fn scan_count_fanout_matches_model_under_churn() {
    let s: ShardedIndex<BTreeOptiQL<4, 4>> = ShardedIndex::with_block_bits(4, 4);
    let threads = 4u64;
    let per = 4_000u64;
    for phase in 0..3u64 {
        std::thread::scope(|scope| {
            for t in 0..threads {
                let s = &s;
                scope.spawn(move || {
                    let base = t * per;
                    // Grow: insert everything; shrink: remove a
                    // phase-dependent stripe — splits then collapses.
                    for k in base..base + per {
                        s.insert(k, k + phase);
                    }
                    for k in (base..base + per).filter(|k| k % 3 == phase % 3) {
                        s.remove(k);
                    }
                });
            }
        });
        // Quiescent: rebuild the ground truth and compare counts.
        let model: BTreeMap<u64, u64> = (0..threads * per)
            .filter(|k| k % 3 != phase % 3)
            .map(|k| (k, k + phase))
            .collect();
        assert_eq!(s.len(), model.len(), "phase {phase}: size");
        for (start, limit) in [
            (0u64, 10_000_000usize),
            (0, 7),
            (1_000, 500),
            (threads * per / 2, 1_000),
            (threads * per, 64),
        ] {
            let want = model.range(start..).take(limit).count();
            assert_eq!(
                s.scan_count(start, limit),
                want,
                "phase {phase}: scan_count({start}, {limit})"
            );
        }
    }
}

#[test]
fn concurrent_disjoint_writers_and_readers() {
    use std::sync::atomic::{AtomicBool, Ordering};

    // 256-key blocks: the 80k-key space stripes ~312 blocks over the
    // eight shards, so every shard sees a true concurrent mix.
    let s: ShardedIndex<BTreeOptiQL> = ShardedIndex::with_block_bits(8, 8);
    let per_thread = 20_000u64;
    let threads = 4u64;
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Writers own disjoint key ranges; the hash spreads each range
        // over every shard, so shards see true concurrent mixes.
        let writers: Vec<_> = (0..threads)
            .map(|t| {
                let s = &s;
                scope.spawn(move || {
                    let base = t * per_thread;
                    for k in base..base + per_thread {
                        assert_eq!(s.insert(k, k + 1), None);
                    }
                    for k in (base..base + per_thread).step_by(2) {
                        assert_eq!(s.remove(k), Some(k + 1));
                    }
                })
            })
            .collect();
        // A reader hammers lookups/scans concurrently; values must always
        // be consistent (absent, or key + 1).
        let reader = scope.spawn(|| {
            let total = threads * per_thread;
            let mut probes = 0u64;
            while !stop.load(Ordering::Acquire) || probes < 10_000 {
                let k = probes.wrapping_mul(0x9E37_79B9_7F4A_7C15) % total;
                if let Some(v) = s.lookup(k) {
                    assert_eq!(v, k + 1, "reader saw torn value for {k}");
                }
                let _ = s.scan_count(k, 16);
                probes += 1;
            }
        });
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        reader.join().unwrap();
    });

    // Final state: exactly the odd keys survive.
    assert_eq!(s.len() as u64, threads * per_thread / 2);
    for t in 0..threads {
        let base = t * per_thread;
        assert_eq!(s.lookup(base), None, "even keys removed");
        assert_eq!(s.lookup(base + 1), Some(base + 2), "odd keys survive");
    }
    let stats = s.index_stats();
    assert!(
        stats.ops >= threads * per_thread,
        "aggregated ops must cover every write: {stats:?}"
    );
}
