//! Multi-threaded differential stress of the sharded facade's batched
//! path: the threads × shards × batch matrix.
//!
//! Each worker owns a private key range (so the final state is
//! deterministic) and shares a read-only preloaded region. Every round
//! it issues a `multi_insert` over its own range — with duplicate keys
//! *inside* the batch — and a `multi_lookup` mixing its own keys,
//! shared keys, and never-written keys, then verifies every result
//! **positionally** against a thread-local model: the scatter/gather in
//! the facade's partition must map result `i` to key `i` even while
//! other threads hammer the same shards. Batch lengths include sizes
//! beyond the trees' pipeline group of 8 and non-multiples of it, so
//! group boundaries and partition remainders are both crossed.
//!
//! Matrix points run over both trees and a `ModelIndex` baseline — the
//! facade must be transparent over all three.

use std::collections::HashMap;

use optiql_art::ArtOptiQL;
use optiql_btree::BTreeOptiQL;
use optiql_index_api::model::ModelIndex;
use optiql_index_api::ConcurrentIndex;
use optiql_sharded::ShardedIndex;

/// Bounded worker count: scale with the host but stay CI-friendly
/// (same clamp idiom as tests/torture.rs).
fn stress_threads() -> u64 {
    std::thread::available_parallelism()
        .map_or(2, |n| n.get() as u64)
        .clamp(2, 4)
}

const SHARED: u64 = 1_024; // read-only preloaded region [0, SHARED)
const RANGE: u64 = 512; // private keys per worker
const ROUNDS: usize = 60;

/// Value tag: which worker wrote, and when.
fn tag(t: u64, round: u64, i: u64) -> u64 {
    (t << 40) | (round << 20) | i
}

fn drive<I: ConcurrentIndex>(sharded: &ShardedIndex<I>, batch: usize, label: &str) {
    let threads = stress_threads();
    // Shared region: value = key + 1, never mutated by workers.
    for k in 0..SHARED {
        sharded.insert(k, k + 1);
    }
    std::thread::scope(|scope| {
        for t in 0..threads {
            let sharded = &sharded;
            scope.spawn(move || {
                let base = SHARED + t * RANGE;
                // Thread-local model of the thread's own range.
                let mut model: HashMap<u64, u64> = HashMap::new();
                let mut rng = 0x9E37_79B9_u64.wrapping_mul(t + 1);
                let mut next = move || {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    rng
                };
                for round in 0..ROUNDS as u64 {
                    // Insert batch over own range, with in-batch
                    // duplicates (~1 in 4 keys repeats).
                    let pairs: Vec<(u64, u64)> = (0..batch as u64)
                        .map(|i| {
                            let r = next();
                            let k = base + (r % (RANGE * 3 / 4)); // forces duplicates
                            (k, tag(t, round, i))
                        })
                        .collect();
                    let res = sharded.multi_insert(&pairs);
                    assert_eq!(res.len(), pairs.len(), "{label}: result length");
                    // Positional check: result i must be the previous
                    // value of key i *at its batch position* — in-batch
                    // duplicates see the earlier in-batch write.
                    for (i, (&(k, v), got)) in pairs.iter().zip(&res).enumerate() {
                        let want = model.insert(k, v);
                        assert_eq!(
                            *got, want,
                            "{label}: multi_insert pos {i} key {k} round {round}"
                        );
                    }
                    // Lookup batch: own keys, shared keys, absent keys,
                    // shuffled positions.
                    let keys: Vec<u64> = (0..batch as u64)
                        .map(|i| {
                            let r = next();
                            match i % 3 {
                                0 => base + (r % RANGE),     // own (maybe unwritten)
                                1 => r % SHARED,             // shared, read-only
                                _ => u64::MAX - (r % 1_000), // absent
                            }
                        })
                        .collect();
                    let res = sharded.multi_lookup(&keys);
                    assert_eq!(res.len(), keys.len());
                    for (i, (&k, got)) in keys.iter().zip(&res).enumerate() {
                        let want = if k < SHARED {
                            Some(k + 1)
                        } else if k >= base && k < base + RANGE {
                            model.get(&k).copied()
                        } else {
                            None
                        };
                        assert_eq!(*got, want, "{label}: multi_lookup pos {i} key {k}");
                    }
                }
                model
            });
        }
    });
    // Deterministic final state: shared region intact.
    for k in (0..SHARED).step_by(97) {
        assert_eq!(sharded.lookup(k), Some(k + 1), "{label}: shared key {k}");
    }
    assert!(
        sharded.len() >= SHARED as usize,
        "{label}: shared region must survive"
    );
}

/// The matrix: shards × batch, for one inner index type.
fn matrix<I: ConcurrentIndex, F: Fn() -> I>(make: F, name: &str) {
    for shards in [1usize, 4, 8] {
        for batch in [4usize, 13, 64] {
            // 16-key blocks: the few-thousand-key test space still
            // stripes over every shard.
            let s = ShardedIndex::with_config(shards, 4, |_| make());
            drive(&s, batch, &format!("{name}/shards{shards}/batch{batch}"));
        }
    }
}

#[test]
fn sharded_btree_mt_matrix() {
    matrix(BTreeOptiQL::<8, 8>::new, "btree");
}

#[test]
fn sharded_art_mt_matrix() {
    matrix(ArtOptiQL::new, "art");
}

#[test]
fn sharded_model_mt_matrix() {
    matrix(ModelIndex::new, "model");
}

/// One oversized configuration: batch far beyond the pipeline group and
/// more in-flight duplicates than groups, at the full default shard
/// count — the partition's flat buffers and the trees' duplicate
/// deferral must agree at any scale.
#[test]
fn giant_batches_with_dense_duplicates() {
    let s: ShardedIndex<BTreeOptiQL> = ShardedIndex::with_config(8, 4, |_| BTreeOptiQL::new());
    let pairs: Vec<(u64, u64)> = (0..512u64).map(|i| (i % 32, i)).collect();
    let res = s.multi_insert(&pairs);
    for (i, r) in res.iter().enumerate() {
        let want = (i >= 32).then(|| (i - 32) as u64);
        assert_eq!(*r, want, "pos {i}: each write sees the previous round's");
    }
    assert_eq!(s.len(), 32);
    let keys: Vec<u64> = (0..64u64).rev().collect();
    let got = s.multi_lookup(&keys);
    for (&k, r) in keys.iter().zip(&got) {
        let want = (k < 32).then_some(480 + k);
        assert_eq!(*r, want, "final value of key {k}");
    }
}
