//! Lock microbenchmark framework (paper §7.1–7.2).
//!
//! Each thread repeatedly picks a lock uniformly at random from a
//! pre-allocated pool and acquires/releases it; the pool size sets the
//! contention level (1 = extreme, 5 = high, 30 000 = medium, 1 000 000 =
//! low, one-per-thread = none). Inside the critical section the thread
//! increments a volatile stack variable `cs_len` times (paper default 50).
//!
//! Mixed workloads draw read vs. write per operation; reads use the
//! optimistic (or pessimistic-shared) protocol and count successes and
//! failures separately, which is exactly the data behind the paper's
//! Table 1 reader-success-rate comparison.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use crossbeam_utils::CachePadded;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use optiql::{ExclusiveLock, IndexLock};

use crate::pin::pin_thread;

/// Contention levels used throughout the paper's Figures 6–8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contention {
    /// 1 shared lock.
    Extreme,
    /// 5 shared locks.
    High,
    /// 30 000 shared locks.
    Medium,
    /// 1 000 000 shared locks.
    Low,
    /// One private lock per thread.
    None,
}

impl Contention {
    /// Number of locks in the pool (`None` ⇒ one per thread).
    pub fn lock_count(&self, threads: usize) -> usize {
        match self {
            Contention::Extreme => 1,
            Contention::High => 5,
            Contention::Medium => 30_000,
            Contention::Low => 1_000_000,
            Contention::None => threads,
        }
    }

    /// Paper label.
    pub fn label(&self) -> &'static str {
        match self {
            Contention::Extreme => "Extreme",
            Contention::High => "High",
            Contention::Medium => "Medium",
            Contention::Low => "Low",
            Contention::None => "No Contention",
        }
    }

    /// All five levels, most contended first (Figure 6 panel order).
    pub fn all() -> [Contention; 5] {
        [
            Contention::Extreme,
            Contention::High,
            Contention::Medium,
            Contention::Low,
            Contention::None,
        ]
    }
}

/// Microbenchmark configuration.
#[derive(Debug, Clone)]
pub struct MicroConfig {
    /// Worker threads.
    pub threads: usize,
    /// Contention level (lock pool size).
    pub contention: Contention,
    /// Percentage of read operations (0 = pure write).
    pub read_pct: u32,
    /// Critical-section length: volatile increments (paper default 50).
    pub cs_len: u32,
    /// Measured run time.
    pub duration: Duration,
}

impl MicroConfig {
    /// Paper-default configuration: pure writes, CS length 50.
    pub fn new(threads: usize, contention: Contention, duration: Duration) -> Self {
        MicroConfig {
            threads,
            contention,
            read_pct: 0,
            cs_len: 50,
            duration,
        }
    }
}

/// Aggregated result of a microbenchmark run.
#[derive(Debug, Clone, Default)]
pub struct MicroResult {
    /// Completed exclusive acquire/release pairs.
    pub writes: u64,
    /// Reads that passed validation.
    pub reads_ok: u64,
    /// Reads that failed admission or validation (retried).
    pub reads_failed: u64,
    /// Wall-clock time of the measured phase.
    pub elapsed: Duration,
    /// Completed operations per worker thread (fairness diagnostics).
    pub per_thread_ops: Vec<u64>,
}

impl MicroResult {
    /// Completed operations (successful reads + writes).
    pub fn ops(&self) -> u64 {
        self.writes + self.reads_ok
    }

    /// Completed operations per second.
    pub fn throughput(&self) -> f64 {
        self.ops() as f64 / self.elapsed.as_secs_f64()
    }

    /// Fraction of read attempts that succeeded (paper Table 1).
    pub fn read_success_rate(&self) -> f64 {
        let attempts = self.reads_ok + self.reads_failed;
        if attempts == 0 {
            0.0
        } else {
            self.reads_ok as f64 / attempts as f64
        }
    }

    /// Max/min completed-ops ratio across threads (fairness; 1.0 = fair).
    pub fn fairness_ratio(&self) -> f64 {
        let max = self.per_thread_ops.iter().copied().max().unwrap_or(0);
        let min = self.per_thread_ops.iter().copied().min().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

/// The paper's critical section: increment a volatile stack variable
/// `n` times.
#[inline(never)]
pub fn cs_work(n: u32) {
    let mut x: u64 = 0;
    for _ in 0..n {
        // Volatile keeps the loop from being optimized away.
        unsafe {
            let v = std::ptr::read_volatile(&x);
            std::ptr::write_volatile(&mut x, v + 1);
        }
    }
}

struct ThreadOut {
    writes: u64,
    reads_ok: u64,
    reads_failed: u64,
}

fn drive<L, F>(cfg: &MicroConfig, body: F) -> MicroResult
where
    L: ExclusiveLock,
    F: Fn(&[CachePadded<L>], &MicroConfig, usize, &AtomicBool) -> ThreadOut + Sync,
{
    let nlocks = cfg.contention.lock_count(cfg.threads);
    let locks: Arc<Vec<CachePadded<L>>> = Arc::new(
        (0..nlocks)
            .map(|_| CachePadded::new(L::default()))
            .collect(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));

    let result = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|tid| {
                let locks = Arc::clone(&locks);
                let stop = Arc::clone(&stop);
                let barrier = Arc::clone(&barrier);
                let body = &body;
                let cfg = cfg.clone();
                s.spawn(move || {
                    pin_thread(tid);
                    barrier.wait();
                    body(&locks, &cfg, tid, &stop)
                })
            })
            .collect();

        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Release);
        let outs: Vec<ThreadOut> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let elapsed = start.elapsed();

        let mut r = MicroResult {
            elapsed,
            ..Default::default()
        };
        for o in &outs {
            r.writes += o.writes;
            r.reads_ok += o.reads_ok;
            r.reads_failed += o.reads_failed;
            r.per_thread_ops.push(o.writes + o.reads_ok);
        }
        r
    });
    result
}

/// Pure-write microbenchmark (Figure 6): every operation is an exclusive
/// acquire + CS + release.
pub fn run_exclusive<L: ExclusiveLock>(cfg: &MicroConfig) -> MicroResult {
    drive::<L, _>(cfg, |locks, cfg, tid, stop| {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ tid as u64);
        let n = locks.len() as u64;
        let mut writes = 0u64;
        let private = matches!(cfg.contention, Contention::None);
        while !stop.load(Ordering::Relaxed) {
            let idx = if private {
                tid as u64
            } else if n == 1 {
                0
            } else {
                rng.random_range(0..n)
            };
            let lock = &locks[idx as usize];
            let t = lock.x_lock();
            cs_work(cfg.cs_len);
            lock.x_unlock(t);
            writes += 1;
        }
        ThreadOut {
            writes,
            reads_ok: 0,
            reads_failed: 0,
        }
    })
}

/// Mixed read/write microbenchmark (Figures 7–8, Table 1). Reads use the
/// optimistic (or pessimistic-shared) protocol; a failed admission or
/// validation counts as a failed read and the operation is *not* retried
/// in place — matching the index behaviour where the caller restarts.
pub fn run_mixed<L: IndexLock>(cfg: &MicroConfig) -> MicroResult {
    drive::<L, _>(cfg, |locks, cfg, tid, stop| {
        let mut rng = SmallRng::seed_from_u64(0xFACADE ^ tid as u64);
        let n = locks.len() as u64;
        let mut out = ThreadOut {
            writes: 0,
            reads_ok: 0,
            reads_failed: 0,
        };
        let private = matches!(cfg.contention, Contention::None);
        while !stop.load(Ordering::Relaxed) {
            let idx = if private {
                tid as u64
            } else if n == 1 {
                0
            } else {
                rng.random_range(0..n)
            };
            let lock = &locks[idx as usize];
            if rng.random_range(0..100) < cfg.read_pct {
                match lock.r_lock() {
                    Some(v) => {
                        cs_work(cfg.cs_len);
                        if lock.r_unlock(v) {
                            out.reads_ok += 1;
                        } else {
                            out.reads_failed += 1;
                        }
                    }
                    None => out.reads_failed += 1,
                }
            } else {
                let t = lock.x_lock();
                cs_work(cfg.cs_len);
                lock.x_unlock(t);
                out.writes += 1;
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use optiql::{McsLock, OptLock, OptiQL, OptiQLNor, TtsLock};

    fn quick(contention: Contention, read_pct: u32) -> MicroConfig {
        MicroConfig {
            threads: 4,
            contention,
            read_pct,
            cs_len: 10,
            duration: Duration::from_millis(120),
        }
    }

    #[test]
    fn exclusive_counts_only_writes() {
        let r = run_exclusive::<TtsLock>(&quick(Contention::High, 0));
        assert!(r.writes > 0);
        assert_eq!(r.reads_ok + r.reads_failed, 0);
        assert_eq!(r.per_thread_ops.len(), 4);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn exclusive_works_for_queue_locks() {
        let r = run_exclusive::<McsLock>(&quick(Contention::Extreme, 0));
        assert!(r.writes > 0);
        let r = run_exclusive::<OptiQL>(&quick(Contention::Extreme, 0));
        assert!(r.writes > 0);
    }

    #[test]
    fn mixed_reads_mostly_succeed_without_writers() {
        let r = run_mixed::<OptLock>(&quick(Contention::Medium, 100));
        assert!(r.reads_ok > 0);
        assert_eq!(r.writes, 0);
        assert!(r.read_success_rate() > 0.99, "{}", r.read_success_rate());
    }

    #[test]
    fn optiql_admits_more_readers_than_nor_under_write_pressure() {
        // Table 1's qualitative claim: with opportunistic read, reader
        // success rates under heavy writes are much higher than NOR's.
        let cfg = quick(Contention::Extreme, 50);
        let with = run_mixed::<OptiQL>(&cfg);
        let without = run_mixed::<OptiQLNor>(&cfg);
        // Both complete writes; OptiQL must validate clearly more reads.
        assert!(with.writes > 0 && without.writes > 0);
        assert!(
            with.read_success_rate() >= without.read_success_rate(),
            "OptiQL {} vs NOR {}",
            with.read_success_rate(),
            without.read_success_rate()
        );
    }

    #[test]
    fn none_contention_uses_private_locks() {
        let r = run_exclusive::<OptLock>(&quick(Contention::None, 0));
        assert!(r.writes > 0);
        // Private locks: every thread makes progress.
        assert!(r.per_thread_ops.iter().all(|&c| c > 0));
    }

    #[test]
    fn contention_levels_map_to_pool_sizes() {
        assert_eq!(Contention::Extreme.lock_count(8), 1);
        assert_eq!(Contention::High.lock_count(8), 5);
        assert_eq!(Contention::Medium.lock_count(8), 30_000);
        assert_eq!(Contention::Low.lock_count(8), 1_000_000);
        assert_eq!(Contention::None.lock_count(8), 8);
    }
}
