//! # optiql-harness — benchmark harness for the OptiQL reproduction
//!
//! Everything needed to regenerate the paper's evaluation:
//!
//! * [`dist`] — uniform, self-similar (Gray et al.) and Zipfian key
//!   distributions plus dense/sparse key-space mappings;
//! * [`latency`] — log-bucketed histograms up to p99.999 (Figure 12);
//! * [`micro`] — the §7.1 lock microbenchmark framework (Figures 6–8,
//!   Table 1);
//! * [`workload`] — a PiBench-style index workload driver (Figures 1,
//!   9–13);
//! * [`affine`] — a thread-per-core driver for the sharded facade
//!   (workers own shards, pin to cores, and amortize reclaim pins over
//!   operation groups; extension, not in the paper);
//! * [`loadgen`] — a closed-loop, multi-connection, pipelined network
//!   load generator for `optiql-server` (also the `optiql-loadgen`
//!   binary; extension, not in the paper);
//! * [`pin`] — best-effort thread pinning;
//! * [`report`] — machine-readable `BENCH_<name>.json` reports shared by
//!   every bench target, so PRs can diff performance mechanically;
//! * [`mod@env`] — environment-variable knobs that let the bench binaries
//!   scale to the host (`OPTIQL_BENCH_THREADS`, `OPTIQL_BENCH_SECS`,
//!   `OPTIQL_BENCH_KEYS`, `OPTIQL_BENCH_FULL`);
//! * [`stats`] — re-export of the lock-event counter registry
//!   (`optiql::stats`): bench binaries bracket a run with
//!   [`stats::reset`] … [`stats::snapshot`] and derive e.g. Table 1's
//!   reader-success rates from real counters. Counters only record when
//!   the workspace is built with `--features stats`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod affine;
pub mod dist;
pub mod latency;
pub mod loadgen;
pub mod micro;
pub mod pin;
pub mod report;
pub mod workload;

pub use affine::{run_affine, AffineReport};
pub use dist::{KeyDist, KeySpace, Sampler};
pub use latency::Histogram;
pub use loadgen::{LoadgenConfig, LoadgenResult};
pub use micro::{cs_work, run_exclusive, run_mixed, Contention, MicroConfig, MicroResult};
pub use optiql::stats;
pub use report::{BenchJson, BenchRecord, JsonValue, LatencySummary};
pub use workload::{
    preload, preload_keyed, run, run_keyed, user_key, ConcurrentIndex, Mix, ScanMode,
    WorkloadConfig, WorkloadResult,
};

/// Environment-variable knobs for the bench binaries.
pub mod env {
    use std::time::Duration;

    fn var_u64(name: &str) -> Option<u64> {
        std::env::var(name).ok()?.trim().parse().ok()
    }

    /// True when `OPTIQL_BENCH_FULL=1`: longer runs, more thread points.
    pub fn full() -> bool {
        var_u64("OPTIQL_BENCH_FULL") == Some(1)
    }

    /// Thread counts to sweep. Default: powers of two up to
    /// `max(4, 2 × cores)` (the paper sweeps 1..80 on its 40-core box);
    /// override with `OPTIQL_BENCH_THREADS="1,2,4,8"`.
    pub fn thread_counts() -> Vec<usize> {
        if let Ok(s) = std::env::var("OPTIQL_BENCH_THREADS") {
            let v: Vec<usize> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect();
            if !v.is_empty() {
                return v;
            }
        }
        let cap = (2 * crate::pin::num_cpus()).max(4);
        let mut v = vec![1];
        let mut t = 2;
        while t <= cap {
            v.push(t);
            t *= 2;
        }
        v
    }

    /// Per-point measurement duration. Default 300 ms (paper: 10 s × 20
    /// runs); override with `OPTIQL_BENCH_SECS` (fractional allowed via
    /// milliseconds in `OPTIQL_BENCH_MILLIS`).
    pub fn duration() -> Duration {
        if let Some(ms) = var_u64("OPTIQL_BENCH_MILLIS") {
            return Duration::from_millis(ms.max(10));
        }
        if let Some(s) = var_u64("OPTIQL_BENCH_SECS") {
            return Duration::from_secs(s.max(1));
        }
        if full() {
            Duration::from_secs(2)
        } else {
            Duration::from_millis(300)
        }
    }

    /// Preloaded record count for index benches. Default 1M (paper: 100M);
    /// override with `OPTIQL_BENCH_KEYS`.
    pub fn preload_keys() -> u64 {
        var_u64("OPTIQL_BENCH_KEYS").unwrap_or(if full() { 10_000_000 } else { 1_000_000 })
    }

    /// Lookups per batched call for the YCSB workload benches. Default 1
    /// (scalar); override with `OPTIQL_BENCH_BATCH` to route the lookup
    /// share of the mix through `multi_lookup`.
    pub fn batch_size() -> usize {
        var_u64("OPTIQL_BENCH_BATCH").unwrap_or(1).max(1) as usize
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn thread_counts_start_at_one() {
        let v = super::env::thread_counts();
        assert_eq!(v[0], 1);
        assert!(v.iter().all(|&n| n >= 1));
    }

    #[test]
    fn duration_is_positive() {
        assert!(super::env::duration().as_millis() > 0);
    }
}
