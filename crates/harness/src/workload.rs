//! PiBench-style index workload driver (paper §7.1).
//!
//! Pre-loads an index with `preload` records of 8-byte keys and 8-byte
//! values, then spawns pinned worker threads that issue an operation mix
//! (lookup / update / insert / remove / scan) with keys drawn from a
//! configurable distribution, reporting throughput and sampled
//! per-operation latency.
//!
//! The driver is key-generic through [`run_keyed`]: any `Fn(u64) -> K`
//! maps the sampled key *indices* into the index's key type, so the same
//! mixes, distributions and scan modes run against byte-string indexes
//! (see [`user_key`] for the YCSB `user########` convention) as against
//! `u64` ones. [`run`] is the `u64` specialization.

use std::ops::Bound;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dist::{KeyDist, KeySpace};
use crate::latency::Histogram;
use crate::pin::pin_thread;

use optiql_index_api::{Bytes, IndexKey};

// The index interface lives in `optiql-index-api` (both trees implement it
// there); re-exported so existing `optiql_harness::ConcurrentIndex` /
// `workload::ConcurrentIndex` imports keep working.
pub use optiql_index_api::ConcurrentIndex;

/// How the scan share of a mix executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Consume the streaming `range` iterator entry by entry without
    /// materializing — the scan path YCSB-E measures.
    #[default]
    Stream,
    /// Collect the same stream into a result buffer first (what a scan
    /// API that returns its results must do); the copy-out-cost baseline
    /// the scan bench compares [`Stream`](ScanMode::Stream) against. The
    /// buffer is reused across scans, so the measured overhead is the
    /// per-entry copy (for byte keys, a key clone), not container churn.
    Materialize,
    /// `scan_count` only — touches the same leaves but returns a count
    /// (the pre-streaming behavior, kept for comparability).
    Count,
}

/// The YCSB string-key convention: `user` + zero-padded decimal index.
/// Lexicographic order equals numeric order, so scan semantics carry
/// over from the `u64` workloads unchanged.
pub fn user_key(i: u64) -> Bytes {
    let mut buf = [0u8; 24];
    buf[..4].copy_from_slice(b"user");
    let digits = format_digits(i, &mut buf[4..]);
    Bytes::from(&buf[..4 + digits])
}

/// Write `i` as exactly 16 zero-padded decimal digits; returns 16.
fn format_digits(mut i: u64, out: &mut [u8]) -> usize {
    for d in (0..16).rev() {
        out[d] = b'0' + (i % 10) as u8;
        i /= 10;
    }
    16
}

/// Operation mix in percent (sums to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Lookup percentage.
    pub lookup: u32,
    /// Update percentage.
    pub update: u32,
    /// Insert percentage.
    pub insert: u32,
    /// Remove percentage.
    pub remove: u32,
    /// Range-scan percentage (YCSB-E style, up to 100 entries per scan).
    pub scan: u32,
}

impl Mix {
    /// 100% lookups (paper "Read-only").
    pub const READ_ONLY: Mix = Mix::new(100, 0, 0, 0);
    /// 80% lookups / 20% updates (paper "Read-heavy").
    pub const READ_HEAVY: Mix = Mix::new(80, 20, 0, 0);
    /// 50/50 (paper "Balanced").
    pub const BALANCED: Mix = Mix::new(50, 50, 0, 0);
    /// 20% lookups / 80% updates (paper "Write-heavy").
    pub const WRITE_HEAVY: Mix = Mix::new(20, 80, 0, 0);
    /// 100% updates (paper "Update-only").
    pub const UPDATE_ONLY: Mix = Mix::new(0, 100, 0, 0);
    /// Insert-heavy extension mix.
    pub const INSERT_HEAVY: Mix = Mix::new(40, 0, 50, 10);

    /// YCSB-A: 50% reads / 50% updates.
    pub const YCSB_A: Mix = Mix::new(50, 50, 0, 0);
    /// YCSB-B: 95% reads / 5% updates.
    pub const YCSB_B: Mix = Mix::new(95, 5, 0, 0);
    /// YCSB-C: read-only.
    pub const YCSB_C: Mix = Mix::new(100, 0, 0, 0);
    /// YCSB-D: 95% reads / 5% inserts.
    pub const YCSB_D: Mix = Mix::new(95, 0, 5, 0);
    /// YCSB-E: 95% range scans / 5% inserts.
    pub const YCSB_E: Mix = Mix::with_scan(0, 0, 5, 0, 95);
    /// YCSB-F: 50% reads / 50% read-modify-writes (modeled as updates).
    pub const YCSB_F: Mix = Mix::new(50, 50, 0, 0);

    /// Construct a point-op mix (must sum to 100).
    pub const fn new(lookup: u32, update: u32, insert: u32, remove: u32) -> Mix {
        Mix::with_scan(lookup, update, insert, remove, 0)
    }

    /// Construct a mix including range scans (must sum to 100).
    pub const fn with_scan(lookup: u32, update: u32, insert: u32, remove: u32, scan: u32) -> Mix {
        let m = Mix {
            lookup,
            update,
            insert,
            remove,
            scan,
        };
        assert!(lookup + update + insert + remove + scan == 100);
        m
    }

    /// The YCSB core workload suite (A–F).
    pub fn ycsb_suite() -> [(&'static str, Mix); 6] {
        [
            ("YCSB-A", Mix::YCSB_A),
            ("YCSB-B", Mix::YCSB_B),
            ("YCSB-C", Mix::YCSB_C),
            ("YCSB-D", Mix::YCSB_D),
            ("YCSB-E", Mix::YCSB_E),
            ("YCSB-F", Mix::YCSB_F),
        ]
    }

    /// The paper's five §7.3 workloads with their labels.
    pub fn paper_suite() -> [(&'static str, Mix); 5] {
        [
            ("Read-only", Mix::READ_ONLY),
            ("Read-heavy", Mix::READ_HEAVY),
            ("Balanced", Mix::BALANCED),
            ("Write-heavy", Mix::WRITE_HEAVY),
            ("Update-only", Mix::UPDATE_ONLY),
        ]
    }
}

/// Index workload configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Worker threads.
    pub threads: usize,
    /// Measured run time.
    pub duration: Duration,
    /// Operation mix.
    pub mix: Mix,
    /// Key distribution over the preloaded key indices.
    pub dist: KeyDist,
    /// Dense or sparse key encoding.
    pub keyspace: KeySpace,
    /// Records preloaded before the measured phase.
    pub preload: u64,
    /// Record one latency sample every `n` operations (0 disables).
    pub sample_every: u32,
    /// Lookups per batched call. `1` (the default) issues scalar
    /// `lookup`s; larger values collect `batch` sampled keys and issue
    /// one `multi_lookup`, exercising the pipelined descent engines.
    /// Only the lookup share of the mix is batched — write ops stay
    /// scalar.
    pub batch: usize,
    /// How the scan share executes (streaming by default).
    pub scan_mode: ScanMode,
    /// Scan lengths are drawn uniformly from `1..=scan_max` per scan
    /// (YCSB-E's short-scan shape).
    pub scan_max: u32,
}

impl WorkloadConfig {
    /// Reasonable defaults for the paper's index experiments, scaled by
    /// the caller via the public fields.
    pub fn new(threads: usize, mix: Mix, dist: KeyDist, preload: u64) -> Self {
        WorkloadConfig {
            threads,
            duration: Duration::from_millis(500),
            mix,
            dist,
            keyspace: KeySpace::Dense,
            preload,
            sample_every: 64,
            batch: 1,
            scan_mode: ScanMode::Stream,
            scan_max: 100,
        }
    }
}

/// Result of a workload run.
#[derive(Debug, Clone, Default)]
pub struct WorkloadResult {
    /// Completed lookups.
    pub lookups: u64,
    /// Lookups that found their key.
    pub lookup_hits: u64,
    /// Completed updates.
    pub updates: u64,
    /// Completed inserts.
    pub inserts: u64,
    /// Completed removes.
    pub removes: u64,
    /// Completed range scans.
    pub scans: u64,
    /// Entries returned across all scans.
    pub scanned_entries: u64,
    /// Measured wall-clock time.
    pub elapsed: Duration,
    /// Per-thread completed operations (fairness diagnostics).
    pub per_thread_ops: Vec<u64>,
}

impl WorkloadResult {
    /// Total completed operations.
    pub fn ops(&self) -> u64 {
        self.lookups + self.updates + self.inserts + self.removes + self.scans
    }

    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        self.ops() as f64 / self.elapsed.as_secs_f64()
    }
}

/// Pre-load `cfg.preload` records: key indices `0..preload` through the
/// key-space mapping, value = key + 1.
pub fn preload<I: ConcurrentIndex>(index: &I, cfg: &WorkloadConfig) {
    for i in 0..cfg.preload {
        let k = cfg.keyspace.key(i);
        index.insert(k, k.wrapping_add(1));
    }
}

/// Pre-load through an arbitrary key mapping: key = `keyfn(i)`,
/// value = `i + 1` for indices `0..preload`.
pub fn preload_keyed<K: IndexKey, I: ConcurrentIndex<K>>(
    index: &I,
    cfg: &WorkloadConfig,
    keyfn: impl Fn(u64) -> K,
) {
    for i in 0..cfg.preload {
        index.insert(keyfn(i), i.wrapping_add(1));
    }
}

/// Run the measured phase. Returns aggregate counts and, when sampling is
/// enabled, a latency histogram (nanoseconds) per run.
pub fn run<I: ConcurrentIndex>(index: &I, cfg: &WorkloadConfig) -> (WorkloadResult, Histogram) {
    run_keyed(index, cfg, |i| cfg.keyspace.key(i))
}

/// Run the measured phase against an index keyed by any [`IndexKey`]:
/// `keyfn` maps each sampled key *index* (pre-`KeySpace` mapping is the
/// caller's choice) to a key. Stored values are `index + 1` /
/// random-on-update, exactly as in [`run`] over a dense keyspace.
pub fn run_keyed<K, I, F>(index: &I, cfg: &WorkloadConfig, keyfn: F) -> (WorkloadResult, Histogram)
where
    K: IndexKey,
    I: ConcurrentIndex<K>,
    F: Fn(u64) -> K + Sync,
{
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    let keyfn = &keyfn;

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|tid| {
                let stop = Arc::clone(&stop);
                let barrier = Arc::clone(&barrier);
                let cfg = cfg.clone();
                s.spawn(move || {
                    pin_thread(tid);
                    let sampler = cfg.dist.sampler(cfg.preload.max(1));
                    let mut rng = SmallRng::seed_from_u64(0xBEEF ^ (tid as u64) << 8);
                    let mut hist = Histogram::new();
                    let mut out = WorkloadResult::default();
                    // Fresh keys for inserts: disjoint per thread, beyond
                    // the preloaded range.
                    let mut next_insert =
                        cfg.preload + tid as u64 * (u64::MAX / 1024 / cfg.threads as u64);
                    let mut op_counter = 0u32;
                    let mut batch_buf: Vec<K> = Vec::with_capacity(cfg.batch.max(1));
                    // Reused materialize-scan scratch: the container is
                    // hoisted out of the hot loop (entry copies still
                    // pay their own key-clone cost, which is the point
                    // of the mode).
                    let mut scan_buf: Vec<(K, u64)> = Vec::new();
                    barrier.wait();
                    while !stop.load(Ordering::Relaxed) {
                        let die = rng.random_range(0..100);
                        let sample_this = cfg.sample_every > 0 && {
                            op_counter = op_counter.wrapping_add(1);
                            op_counter % cfg.sample_every == 0
                        };
                        let t0 = sample_this.then(Instant::now);
                        if die < cfg.mix.lookup {
                            if cfg.batch > 1 {
                                batch_buf.clear();
                                for _ in 0..cfg.batch {
                                    batch_buf.push(keyfn(sampler.sample(&mut rng)));
                                }
                                let res = index.multi_lookup(&batch_buf);
                                out.lookup_hits +=
                                    res.iter().filter(|r| r.is_some()).count() as u64;
                                out.lookups += cfg.batch as u64;
                            } else {
                                let k = keyfn(sampler.sample(&mut rng));
                                if index.lookup(k).is_some() {
                                    out.lookup_hits += 1;
                                }
                                out.lookups += 1;
                            }
                        } else if die < cfg.mix.lookup + cfg.mix.update {
                            let k = keyfn(sampler.sample(&mut rng));
                            index.update(k, rng.random());
                            out.updates += 1;
                        } else if die < cfg.mix.lookup + cfg.mix.update + cfg.mix.insert {
                            let i = next_insert;
                            next_insert += 1;
                            index.insert(keyfn(i), i.wrapping_add(1));
                            out.inserts += 1;
                        } else if die
                            < cfg.mix.lookup + cfg.mix.update + cfg.mix.insert + cfg.mix.remove
                        {
                            let k = keyfn(sampler.sample(&mut rng));
                            index.remove(k);
                            out.removes += 1;
                        } else {
                            let k = keyfn(sampler.sample(&mut rng));
                            let len = rng.random_range(0..cfg.scan_max.max(1)) as usize + 1;
                            out.scanned_entries += match cfg.scan_mode {
                                ScanMode::Stream => {
                                    // Lazy consumption: entries are
                                    // folded as they stream, nothing is
                                    // collected.
                                    let mut n = 0u64;
                                    let mut acc = 0u64;
                                    for (_, v) in
                                        index.range(Bound::Included(k), Bound::Unbounded).take(len)
                                    {
                                        n += 1;
                                        acc ^= v;
                                    }
                                    std::hint::black_box(acc);
                                    n
                                }
                                ScanMode::Materialize => {
                                    scan_buf.clear();
                                    scan_buf.extend(
                                        index.range(Bound::Included(k), Bound::Unbounded).take(len),
                                    );
                                    std::hint::black_box(&scan_buf);
                                    scan_buf.len() as u64
                                }
                                ScanMode::Count => index.scan_count(k, len) as u64,
                            };
                            out.scans += 1;
                        }
                        if let Some(t0) = t0 {
                            hist.record(t0.elapsed().as_nanos() as u64);
                        }
                    }
                    (out, hist)
                })
            })
            .collect();

        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Release);

        let mut total = WorkloadResult::default();
        let mut hist = Histogram::new();
        for h in handles {
            let (out, th) = h.join().unwrap();
            total.lookups += out.lookups;
            total.lookup_hits += out.lookup_hits;
            total.updates += out.updates;
            total.inserts += out.inserts;
            total.removes += out.removes;
            total.scans += out.scans;
            total.scanned_entries += out.scanned_entries;
            total
                .per_thread_ops
                .push(out.lookups + out.updates + out.inserts + out.removes + out.scans);
            hist.merge(&th);
        }
        total.elapsed = start.elapsed();
        (total, hist)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use optiql_art::ArtOptiQL;
    use optiql_btree::{BTreeOptLock, BTreeOptiQL};

    fn quick_cfg(mix: Mix) -> WorkloadConfig {
        let mut cfg = WorkloadConfig::new(2, mix, KeyDist::Uniform, 10_000);
        cfg.duration = Duration::from_millis(150);
        cfg
    }

    #[test]
    fn preload_populates_every_key() {
        let tree: BTreeOptiQL = BTreeOptiQL::new();
        let cfg = quick_cfg(Mix::READ_ONLY);
        preload(&tree, &cfg);
        assert_eq!(tree.len(), 10_000);
        assert_eq!(tree.lookup(0), Some(1));
        assert_eq!(tree.lookup(9_999), Some(10_000));
    }

    #[test]
    fn read_only_workload_hits_every_lookup() {
        let tree: BTreeOptiQL = BTreeOptiQL::new();
        let cfg = quick_cfg(Mix::READ_ONLY);
        preload(&tree, &cfg);
        let (r, hist) = run(&tree, &cfg);
        assert!(r.lookups > 0);
        assert_eq!(r.lookups, r.lookup_hits, "dense preload: all hits");
        assert_eq!(r.updates + r.inserts + r.removes, 0);
        assert!(hist.count() > 0);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn balanced_workload_mixes_ops() {
        let tree: BTreeOptLock = BTreeOptLock::new();
        let cfg = quick_cfg(Mix::BALANCED);
        preload(&tree, &cfg);
        let (r, _) = run(&tree, &cfg);
        assert!(r.lookups > 0);
        assert!(r.updates > 0);
        let ratio = r.lookups as f64 / (r.lookups + r.updates) as f64;
        assert!((0.35..0.65).contains(&ratio), "lookup ratio {ratio}");
    }

    #[test]
    fn insert_heavy_grows_art() {
        let art: ArtOptiQL = ArtOptiQL::new();
        let cfg = quick_cfg(Mix::INSERT_HEAVY);
        preload(&art, &cfg);
        let before = art.len();
        let (r, _) = run(&art, &cfg);
        assert!(r.inserts > 0);
        assert!(art.len() > before, "inserts must add keys");
        art.check_invariants();
    }

    #[test]
    fn self_similar_workload_runs_on_art() {
        let art: ArtOptiQL = ArtOptiQL::new();
        let mut cfg = quick_cfg(Mix::WRITE_HEAVY);
        cfg.dist = KeyDist::self_similar_02();
        preload(&art, &cfg);
        let (r, _) = run(&art, &cfg);
        assert!(r.updates > 0);
        art.check_invariants();
    }

    #[test]
    fn batched_read_only_workload_hits_every_lookup() {
        let tree: BTreeOptiQL = BTreeOptiQL::new();
        let mut cfg = quick_cfg(Mix::READ_ONLY);
        cfg.batch = 8;
        preload(&tree, &cfg);
        let (r, _) = run(&tree, &cfg);
        assert!(r.lookups > 0);
        assert_eq!(r.lookups % 8, 0, "lookups counted in whole batches");
        assert_eq!(r.lookups, r.lookup_hits, "dense preload: all hits");
    }

    #[test]
    fn batched_lookups_mix_with_scalar_writes_on_art() {
        let art: ArtOptiQL = ArtOptiQL::new();
        let mut cfg = quick_cfg(Mix::READ_HEAVY);
        cfg.batch = 16;
        preload(&art, &cfg);
        let (r, _) = run(&art, &cfg);
        assert!(r.lookups > 0 && r.updates > 0);
        assert_eq!(r.lookups, r.lookup_hits);
        art.check_invariants();
    }

    #[test]
    fn mix_percentages_validate() {
        let suite = Mix::paper_suite();
        assert_eq!(suite.len(), 5);
        for (_, m) in suite {
            assert_eq!(m.lookup + m.update + m.insert + m.remove + m.scan, 100);
        }
        for (_, m) in Mix::ycsb_suite() {
            assert_eq!(m.lookup + m.update + m.insert + m.remove + m.scan, 100);
        }
    }

    #[test]
    fn ycsb_e_drives_range_scans() {
        let tree: BTreeOptiQL = BTreeOptiQL::new();
        let cfg = quick_cfg(Mix::YCSB_E);
        preload(&tree, &cfg);
        let (r, _) = run(&tree, &cfg);
        assert!(r.scans > 0, "YCSB-E must issue scans");
        assert!(r.scanned_entries > 0);
        assert!(r.inserts > 0, "YCSB-E inserts 5%");
    }

    #[test]
    fn ycsb_e_scans_on_art_too() {
        let art: ArtOptiQL = ArtOptiQL::new();
        let cfg = quick_cfg(Mix::YCSB_E);
        preload(&art, &cfg);
        let (r, _) = run(&art, &cfg);
        assert!(r.scans > 0 && r.scanned_entries > 0);
        art.check_invariants();
    }

    #[test]
    fn user_key_is_order_preserving_and_stable() {
        // "user" + 16 zero-padded decimal digits: index order == byte order.
        assert_eq!(user_key(0).as_bytes(), b"user0000000000000000");
        assert_eq!(user_key(42).as_bytes(), b"user0000000000000042");
        let mut prev = user_key(0);
        for i in 1..2_000u64 {
            let k = user_key(i * 7 + i % 3);
            if i * 7 + i % 3 > 0 {
                assert!(user_key(i * 7 + i % 3 - 1) < k);
            }
            let _ = &prev;
            prev = k;
        }
    }

    #[test]
    fn string_key_ycsb_c_runs_on_art() {
        // The byte-string acceptance workload: YCSB-C (100% reads) over
        // "userNNN…" keys on the ART. Every lookup must hit.
        let art: optiql_art::ArtTree<optiql::OptiQL, Bytes> = optiql_art::ArtTree::new();
        let cfg = quick_cfg(Mix::READ_ONLY);
        preload_keyed(&art, &cfg, user_key);
        assert_eq!(art.len(), 10_000);
        let (r, _) = run_keyed(&art, &cfg, user_key);
        assert!(r.lookups > 0);
        assert_eq!(r.lookups, r.lookup_hits, "dense user-key preload: all hits");
        art.check_invariants();
    }

    #[test]
    fn string_key_ycsb_e_streams_scans_on_btree() {
        let tree: optiql_btree::BPlusTree<optiql::OptLock, optiql::OptiQL, 16, 16, Bytes> =
            optiql_btree::BPlusTree::new();
        let mut cfg = quick_cfg(Mix::YCSB_E);
        cfg.scan_max = 50;
        preload_keyed(&tree, &cfg, user_key);
        let (r, _) = run_keyed(&tree, &cfg, user_key);
        assert!(r.scans > 0 && r.scanned_entries > 0);
        assert!(r.inserts > 0);
    }

    #[test]
    fn scan_modes_agree_on_quiescent_counts() {
        // Same config, no writers: Stream, Materialize, and Count must
        // all report full-length scans over a dense preload.
        for mode in [ScanMode::Stream, ScanMode::Materialize, ScanMode::Count] {
            let tree: BTreeOptiQL = BTreeOptiQL::new();
            let mut cfg = quick_cfg(Mix::with_scan(0, 0, 0, 0, 100));
            cfg.scan_mode = mode;
            cfg.scan_max = 10;
            preload(&tree, &cfg);
            let (r, _) = run(&tree, &cfg);
            assert!(r.scans > 0, "{mode:?} issued no scans");
            // Scan lengths are uniform in 1..=10 and every start has at
            // least 10 successors in a dense 10k preload, so the mean
            // entries-per-scan must be strictly above 1.
            assert!(
                r.scanned_entries > r.scans,
                "{mode:?}: {} entries over {} scans",
                r.scanned_entries,
                r.scans
            );
        }
    }
}
