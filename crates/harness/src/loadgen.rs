//! Closed-loop, multi-connection, pipelined load generator for
//! `optiql-server`.
//!
//! Each connection is one client thread holding a window of
//! `pipeline` in-flight requests: it primes the window, then sends one
//! new request per response received — a closed loop, so the measured
//! throughput is the system's, not the generator's imagination. Frames
//! and responses are matched positionally (the protocol guarantees
//! arrival-order responses), which is what makes per-request latency a
//! front-of-window timestamp subtraction instead of an id map.
//!
//! Knobs: connection count, pipeline depth, read ratio (GET vs SET),
//! reads-as-MGET batch size, key distribution (uniform / Zipfian /
//! self-similar via [`KeyDist`]), and key-space size. Results carry
//! throughput *and* a log-bucketed latency [`Histogram`], so the
//! `server` bench reports tail percentiles next to ops/s.

use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use optiql_server::proto::{FrameDecoder, Request, Response};

use crate::dist::{KeyDist, KeySpace};
use crate::latency::Histogram;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent connections, one client thread each.
    pub connections: usize,
    /// In-flight requests per connection (1 = strict request/response).
    pub pipeline: usize,
    /// Requests each connection issues before disconnecting.
    pub ops_per_conn: u64,
    /// Percentage of requests that are reads (GET/MGET); the rest are
    /// SETs of random values.
    pub read_pct: u32,
    /// Keys per read request: 1 sends GETs, larger sends MGETs of this
    /// size (client-side batching on top of pipelining).
    pub mget: usize,
    /// Distribution of key *indices* over `0..keys`.
    pub dist: KeyDist,
    /// Index → key mapping (must match how the server was preloaded).
    pub keyspace: KeySpace,
    /// Key-index space size (the server's preload count, for all-hit
    /// reads).
    pub keys: u64,
    /// Seed; each connection derives its own stream from it.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".into(),
            connections: 1,
            pipeline: 8,
            ops_per_conn: 10_000,
            read_pct: 100,
            mget: 1,
            dist: KeyDist::Uniform,
            keyspace: KeySpace::Dense,
            keys: 1_000_000,
            seed: 0x10AD,
        }
    }
}

/// Aggregated load-generator outcome.
#[derive(Debug, Clone, Default)]
pub struct LoadgenResult {
    /// Request frames sent (an MGET counts once).
    pub requests: u64,
    /// Index operations implied (an MGET of k keys counts k).
    pub ops: u64,
    /// Read results that found their key.
    pub hits: u64,
    /// Read results that missed.
    pub misses: u64,
    /// Error responses received.
    pub errors: u64,
    /// Wall-clock time of the slowest connection.
    pub elapsed: Duration,
    /// Per-request latency (nanoseconds), merged over connections.
    pub hist: Histogram,
}

impl LoadgenResult {
    /// Index operations per second (MGET keys each count).
    pub fn throughput(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.ops as f64 / self.elapsed.as_secs_f64()
    }

    fn merge(&mut self, other: LoadgenResult) {
        self.requests += other.requests;
        self.ops += other.ops;
        self.hits += other.hits;
        self.misses += other.misses;
        self.errors += other.errors;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.hist.merge(&other.hist);
    }
}

/// One connection's closed loop.
fn drive_conn(cfg: &LoadgenConfig, conn_id: usize) -> std::io::Result<LoadgenResult> {
    let mut stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true)?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ ((conn_id as u64 + 1) << 32));
    let sampler = cfg.dist.sampler(cfg.keys.max(1));
    let mget = cfg.mget.max(1);

    let mut out = LoadgenResult::default();
    let mut dec = FrameDecoder::new();
    let mut inflight: VecDeque<Instant> = VecDeque::with_capacity(cfg.pipeline);
    let mut wire = Vec::with_capacity(4096);
    let mut buf = vec![0u8; 64 * 1024];
    let mut issued = 0u64;
    let mut completed = 0u64;

    let push_request = |wire: &mut Vec<u8>, rng: &mut SmallRng, out: &mut LoadgenResult| {
        let read = rng.random_range(0u32..100) < cfg.read_pct;
        if read && mget > 1 {
            let keys: Vec<u64> = (0..mget)
                .map(|_| cfg.keyspace.key(sampler.sample(rng)))
                .collect();
            out.ops += keys.len() as u64;
            Request::MGet { keys }.encode(wire);
        } else if read {
            let key = cfg.keyspace.key(sampler.sample(rng));
            out.ops += 1;
            Request::Get { key }.encode(wire);
        } else {
            let key = cfg.keyspace.key(sampler.sample(rng));
            out.ops += 1;
            Request::Set {
                key,
                value: rng.random(),
            }
            .encode(wire);
        }
        out.requests += 1;
    };

    let started = Instant::now();
    // Prime the window.
    let prime = (cfg.pipeline.max(1) as u64).min(cfg.ops_per_conn);
    wire.clear();
    for _ in 0..prime {
        push_request(&mut wire, &mut rng, &mut out);
        inflight.push_back(Instant::now());
        issued += 1;
    }
    stream.write_all(&wire)?;

    while completed < cfg.ops_per_conn {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("server closed with {completed}/{} done", cfg.ops_per_conn),
            ));
        }
        dec.feed(&buf[..n]);
        wire.clear();
        let mut refill = 0u64;
        loop {
            match dec.next_response() {
                Ok(Some(resp)) => {
                    let sent = inflight.pop_front().expect("response without a request");
                    out.hist.record(sent.elapsed().as_nanos() as u64);
                    completed += 1;
                    match resp {
                        Response::Value(v) => {
                            if v.is_some() {
                                out.hits += 1;
                            } else {
                                out.misses += 1;
                            }
                        }
                        Response::MValues(vs) => {
                            let h = vs.iter().filter(|v| v.is_some()).count() as u64;
                            out.hits += h;
                            out.misses += vs.len() as u64 - h;
                        }
                        Response::Error(msg) => {
                            out.errors += 1;
                            out.elapsed = started.elapsed();
                            return Err(std::io::Error::other(format!("server error: {msg}")));
                        }
                        Response::Old(_) | Response::Count(_) | Response::Ok => {}
                        // The load generator never issues SCAN; a streamed
                        // frame would desync the one-response-per-request
                        // pipeline accounting, so fail loudly instead.
                        Response::ScanPart(_) | Response::ScanEnd { .. } => {
                            out.errors += 1;
                            out.elapsed = started.elapsed();
                            return Err(std::io::Error::other("unexpected SCAN stream frame"));
                        }
                    }
                    if issued < cfg.ops_per_conn {
                        push_request(&mut wire, &mut rng, &mut out);
                        inflight.push_back(Instant::now());
                        issued += 1;
                        refill += 1;
                    }
                }
                Ok(None) => break,
                Err(e) => return Err(std::io::Error::other(format!("bad response: {e}"))),
            }
        }
        if refill > 0 {
            stream.write_all(&wire)?;
        }
    }
    out.elapsed = started.elapsed();
    Ok(out)
}

/// Run the closed loop: `cfg.connections` client threads, each issuing
/// `cfg.ops_per_conn` pipelined requests, results merged.
pub fn run(cfg: &LoadgenConfig) -> std::io::Result<LoadgenResult> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.connections.max(1))
            .map(|c| s.spawn(move || drive_conn(cfg, c)))
            .collect();
        let mut total = LoadgenResult::default();
        let mut first_err = None;
        for h in handles {
            match h.join().expect("loadgen thread panicked") {
                Ok(r) => total.merge(r),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    })
}

/// Synchronous single-connection client for scripted request/response
/// exchanges (verification, shutdown, tests).
pub struct Client {
    stream: TcpStream,
    dec: FrameDecoder,
    buf: Vec<u8>,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            dec: FrameDecoder::new(),
            buf: vec![0u8; 16 * 1024],
        })
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        let mut wire = Vec::with_capacity(64);
        req.encode(&mut wire);
        self.stream.write_all(&wire)?;
        self.recv()
    }

    /// Send raw bytes (tests feed the server garbage through this).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Receive the next response frame.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        loop {
            if let Some(resp) = self
                .dec
                .next_response()
                .map_err(|e| std::io::Error::other(format!("bad response: {e}")))?
            {
                return Ok(resp);
            }
            let n = self.stream.read(&mut self.buf)?;
            if n == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            self.dec.feed(&self.buf[..n]);
        }
    }
}

/// Scripted end-to-end check of every data opcode: SET/GET/MGET/DEL/
/// SCAN_COUNT round-trips with asserted results. Returns a description
/// of the first mismatch, if any.
pub fn verify(addr: &str) -> Result<(), String> {
    let e = |s: String| s;
    let mut c = Client::connect(addr).map_err(|err| e(format!("connect: {err}")))?;
    let mut call = |req: Request| -> Result<Response, String> {
        c.call(&req).map_err(|err| format!("{req:?}: {err}"))
    };
    // Keys far above any preload range so verification never collides
    // with benchmark data.
    let base = u64::MAX - 1024;
    for i in 0..8u64 {
        let got = call(Request::Set {
            key: base + i,
            value: 100 + i,
        })?;
        if got != Response::Old(None) {
            return Err(format!("fresh SET returned {got:?}"));
        }
    }
    let got = call(Request::Set {
        key: base,
        value: 200,
    })?;
    if got != Response::Old(Some(100)) {
        return Err(format!("overwrite SET returned {got:?}"));
    }
    let got = call(Request::Get { key: base })?;
    if got != Response::Value(Some(200)) {
        return Err(format!("GET returned {got:?}"));
    }
    let got = call(Request::MGet {
        keys: vec![base, base + 7, base + 500, base + 1],
    })?;
    if got != Response::MValues(vec![Some(200), Some(107), None, Some(101)]) {
        return Err(format!("MGET returned {got:?}"));
    }
    let got = call(Request::ScanCount {
        start: base,
        limit: 1000,
    })?;
    if got != Response::Count(8) {
        return Err(format!("SCAN_COUNT returned {got:?}"));
    }
    let got = call(Request::Del { key: base + 3 })?;
    if got != Response::Old(Some(103)) {
        return Err(format!("DEL returned {got:?}"));
    }
    let got = call(Request::Get { key: base + 3 })?;
    if got != Response::Value(None) {
        return Err(format!("GET after DEL returned {got:?}"));
    }
    // Clean up so repeated verification passes.
    for i in 0..8u64 {
        call(Request::Del { key: base + i })?;
    }
    Ok(())
}

/// Ask the server to shut down cleanly; returns once it acks.
pub fn shutdown(addr: &str) -> std::io::Result<()> {
    let mut c = Client::connect(addr)?;
    match c.call(&Request::Shutdown)? {
        Response::Ok => Ok(()),
        other => Err(std::io::Error::other(format!(
            "unexpected shutdown ack: {other:?}"
        ))),
    }
}
