//! `optiql-loadgen` — drive an `optiql-server` over TCP.
//!
//! ```text
//! optiql-loadgen --addr 127.0.0.1:7878 [--connections 2] [--depth 8]
//!                [--ops 100000] [--read-pct 100] [--mget 1]
//!                [--keys 1000000] [--zipf 0.99] [--seed N]
//!                [--verify] [--shutdown]
//! ```
//!
//! Default mode runs the closed-loop pipelined benchmark and prints a
//! throughput + tail-latency summary. `--verify` instead runs the
//! scripted SET/GET/MGET/DEL/SCAN_COUNT end-to-end assertion suite
//! (exit 1 on any mismatch); `--shutdown` sends the SHUTDOWN opcode and
//! waits for the ack. Flags combine: `--verify --shutdown` verifies,
//! then stops the server.

use optiql_harness::loadgen::{self, LoadgenConfig};
use optiql_harness::report::LatencySummary;
use optiql_harness::KeyDist;

fn usage() -> ! {
    eprintln!(
        "usage: optiql-loadgen [--addr HOST:PORT] [--connections N] [--depth N] [--ops N]\n\
         \x20                     [--read-pct 0..100] [--mget N] [--keys N] [--zipf THETA]\n\
         \x20                     [--seed N] [--verify] [--shutdown]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = LoadgenConfig::default();
    let mut verify = false;
    let mut do_shutdown = false;
    let mut bench = true;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => cfg.addr = val(),
            "--connections" => cfg.connections = val().parse().unwrap_or_else(|_| usage()),
            "--depth" => cfg.pipeline = val().parse().unwrap_or_else(|_| usage()),
            "--ops" => cfg.ops_per_conn = val().parse().unwrap_or_else(|_| usage()),
            "--read-pct" => cfg.read_pct = val().parse().unwrap_or_else(|_| usage()),
            "--mget" => cfg.mget = val().parse().unwrap_or_else(|_| usage()),
            "--keys" => cfg.keys = val().parse().unwrap_or_else(|_| usage()),
            "--zipf" => {
                cfg.dist = KeyDist::Zipfian {
                    theta: val().parse().unwrap_or_else(|_| usage()),
                }
            }
            "--seed" => cfg.seed = val().parse().unwrap_or_else(|_| usage()),
            "--verify" => {
                verify = true;
                bench = false;
            }
            "--shutdown" => {
                do_shutdown = true;
                bench = false;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    if verify {
        match loadgen::verify(&cfg.addr) {
            Ok(()) => println!("verify: ok (SET/GET/MGET/DEL/SCAN_COUNT all round-tripped)"),
            Err(e) => {
                eprintln!("verify: FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    if bench {
        match loadgen::run(&cfg) {
            Ok(r) => {
                let lat = LatencySummary::from_histogram(&r.hist);
                println!(
                    "loadgen: conns={} depth={} requests={} ops={} hits={} misses={} errors={}",
                    cfg.connections, cfg.pipeline, r.requests, r.ops, r.hits, r.misses, r.errors
                );
                match lat {
                    Some(l) => println!(
                        "loadgen: {:.0} ops/s  p50={:.0}ns p95={:.0}ns p99={:.0}ns p999={:.0}ns",
                        r.throughput(),
                        l.p50_ns,
                        l.p95_ns,
                        l.p99_ns,
                        l.p999_ns
                    ),
                    None => println!("loadgen: {:.0} ops/s (no latency samples)", r.throughput()),
                }
            }
            Err(e) => {
                eprintln!("loadgen: FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    if do_shutdown {
        match loadgen::shutdown(&cfg.addr) {
            Ok(()) => println!("shutdown: acked"),
            Err(e) => {
                eprintln!("shutdown: FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
