//! Machine-readable benchmark reports (`BENCH_<name>.json`).
//!
//! Every bench target appends structured records to one JSON-lines file per
//! target so successive PRs can diff performance mechanically instead of
//! eyeballing stdout. Each line is a self-contained JSON object:
//!
//! ```json
//! {"bench":"hotpath","config":"pin_unpin","threads":1,"ops_per_sec":5.2e7,"p50_ns":18.9,"p99_ns":22.4}
//! ```
//!
//! The file lands in the repository's `results/` directory by default
//! (resolved relative to this crate's manifest, so it works from any
//! working directory); set `OPTIQL_BENCH_OUT` to redirect, e.g. to a CI
//! artifact directory. Opening a [`BenchJson`] truncates the target file, so
//! a run always produces a complete, consistent report; records within the
//! run are appended as they are produced.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;

/// One structured benchmark data point.
///
/// `config` is free-form (series name, lock name, node size, ...). The
/// latency percentiles are optional: throughput-only benches leave them
/// `None` and the fields are emitted as JSON `null`.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark group within the target (e.g. `"pin_unpin"`).
    pub bench: String,
    /// Configuration label (series, lock, size, ...).
    pub config: String,
    /// Code revision tag the numbers were measured at (see
    /// [`BenchRecord::rev_from_env`]); lets one report file carry
    /// before/after numbers for a perf PR.
    pub rev: String,
    /// Number of worker threads used for this point.
    pub threads: usize,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
    /// Median per-operation latency in nanoseconds, if measured.
    pub p50_ns: Option<f64>,
    /// 99th-percentile per-operation latency in nanoseconds, if measured.
    pub p99_ns: Option<f64>,
}

impl BenchRecord {
    /// Revision tag for this run: `OPTIQL_BENCH_REV` when set, else `"dev"`.
    pub fn rev_from_env() -> String {
        std::env::var("OPTIQL_BENCH_REV")
            .ok()
            .filter(|s| !s.trim().is_empty())
            .unwrap_or_else(|| "dev".into())
    }
}

/// Directory where `BENCH_<name>.json` files are written.
///
/// `OPTIQL_BENCH_OUT` wins when set; otherwise the workspace `results/`
/// directory (located relative to this crate so benches can run from
/// anywhere inside the repo).
pub fn out_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("OPTIQL_BENCH_OUT") {
        if !dir.trim().is_empty() {
            return PathBuf::from(dir);
        }
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
}

/// Writer for one `BENCH_<name>.json` report file (JSON lines).
pub struct BenchJson {
    file: Option<File>,
    path: PathBuf,
}

impl BenchJson {
    /// Start a fresh report for `name`, truncating any previous file.
    ///
    /// I/O failures (read-only checkout, missing directory) are reported
    /// once on stderr and then ignored: a bench must never fail because the
    /// report file is unwritable.
    pub fn new(name: &str) -> Self {
        let dir = out_dir();
        let path = dir.join(format!("BENCH_{name}.json"));
        let _ = std::fs::create_dir_all(&dir);
        let file = match OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
        {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("# bench_json: cannot open {}: {e}", path.display());
                None
            }
        };
        BenchJson { file, path }
    }

    /// Path of the report file.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Append one structured record.
    pub fn record(&mut self, r: &BenchRecord) {
        let line = format!(
            "{{\"bench\":{},\"config\":{},\"rev\":{},\"threads\":{},\"ops_per_sec\":{},\"p50_ns\":{},\"p99_ns\":{}}}\n",
            json_str(&r.bench),
            json_str(&r.config),
            json_str(&r.rev),
            r.threads,
            json_num(r.ops_per_sec),
            r.p50_ns.map_or("null".into(), json_num),
            r.p99_ns.map_or("null".into(), json_num),
        );
        self.write_line(&line);
    }

    /// Append one free-form record from key/value pairs (used by the
    /// figure benches, whose row shapes vary per figure).
    pub fn record_kv(&mut self, fields: &[(&str, JsonValue)]) {
        let mut line = String::from("{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&json_str(k));
            line.push(':');
            line.push_str(&v.render());
        }
        line.push_str("}\n");
        self.write_line(&line);
    }

    fn write_line(&mut self, line: &str) {
        if let Some(f) = self.file.as_mut() {
            if f.write_all(line.as_bytes()).is_err() {
                self.file = None;
            }
        }
    }
}

/// Tail-latency summary shared by the bench targets: the log-bucket
/// [`Histogram`](crate::latency::Histogram) percentiles every BENCH JSON
/// carries when latency was sampled (p50/p95/p99/p999, nanoseconds).
///
/// One type, one field order, one naming scheme — so `BENCH_server.json`
/// and `BENCH_sharded_mt.json` rows are mechanically comparable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median latency in nanoseconds.
    pub p50_ns: f64,
    /// 95th percentile.
    pub p95_ns: f64,
    /// 99th percentile.
    pub p99_ns: f64,
    /// 99.9th percentile.
    pub p999_ns: f64,
}

impl LatencySummary {
    /// Summarize a histogram; `None` when nothing was recorded (so
    /// callers emit `null` columns instead of fake zeros).
    pub fn from_histogram(h: &crate::latency::Histogram) -> Option<LatencySummary> {
        if h.count() == 0 {
            return None;
        }
        Some(LatencySummary {
            p50_ns: h.quantile(0.50) as f64,
            p95_ns: h.quantile(0.95) as f64,
            p99_ns: h.quantile(0.99) as f64,
            p999_ns: h.quantile(0.999) as f64,
        })
    }

    /// The summary as JSON fields for [`BenchJson::record_kv`]. Pass
    /// `None` to emit the same columns as `null` (row shapes stay
    /// uniform whether or not latency was sampled).
    pub fn fields(this: Option<&LatencySummary>) -> [(&'static str, JsonValue); 4] {
        let num = |v: Option<f64>| v.map_or(JsonValue::Num(f64::NAN), JsonValue::Num);
        [
            ("p50_ns", num(this.map(|s| s.p50_ns))),
            ("p95_ns", num(this.map(|s| s.p95_ns))),
            ("p99_ns", num(this.map(|s| s.p99_ns))),
            ("p999_ns", num(this.map(|s| s.p999_ns))),
        ]
    }
}

/// Minimal JSON value for [`BenchJson::record_kv`].
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// A string value.
    Str(String),
    /// A finite (or not: mapped to `null`) floating-point value.
    Num(f64),
    /// An integer value.
    Int(i64),
}

impl JsonValue {
    fn render(&self) -> String {
        match self {
            JsonValue::Str(s) => json_str(s),
            JsonValue::Num(v) => json_num(*v),
            JsonValue::Int(v) => v.to_string(),
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trippable form Rust prints is valid JSON.
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_lines_are_valid_shape() {
        // Checked before touching OPTIQL_BENCH_OUT (same-process env var):
        // the default output directory is the workspace results/ dir.
        assert!(out_dir().ends_with("results"));
        let dir = std::env::temp_dir().join(format!("optiql_report_test_{}", std::process::id()));
        std::env::set_var("OPTIQL_BENCH_OUT", &dir);
        let mut rep = BenchJson::new("selftest");
        rep.record(&BenchRecord {
            bench: "b".into(),
            config: "c\"x".into(),
            rev: BenchRecord::rev_from_env(),
            threads: 4,
            ops_per_sec: 1.5e6,
            p50_ns: Some(10.0),
            p99_ns: None,
        });
        rep.record_kv(&[
            ("bench", JsonValue::Str("fig".into())),
            ("x", JsonValue::Int(8)),
            ("value", JsonValue::Num(2.25)),
        ]);
        std::env::remove_var("OPTIQL_BENCH_OUT");
        let text = std::fs::read_to_string(rep.path()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"config\":\"c\\\"x\""));
        assert!(lines[0].contains("\"p99_ns\":null"));
        assert!(lines[1].contains("\"value\":2.25"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
