//! Affine workload mode: thread-per-core driving of a sharded index.
//!
//! [`run`](crate::workload::run) treats the index as a black box: every
//! worker samples the whole key space, so over a sharded facade every
//! worker wanders across every shard — alternating reclamation domains
//! on nearly every operation and dragging all shards' hot sets through
//! its cache. That is the right *robustness* workload, but it is not how
//! a partitioned serving system drives a partitioned index.
//!
//! [`run_affine`] is the sympathetic mode the facade is designed for:
//!
//! * shards are dealt round-robin to workers
//!   ([`ShardAffinity::shards_of_worker`]); each worker only issues
//!   operations whose keys route to shards it owns;
//! * each worker best-effort pins itself to the core its first owned
//!   shard was placed on (a no-op on single-core or non-Linux hosts);
//! * workers pre-generate their key pools before the measured phase, so
//!   sampling and routing rejection never sit on the measured path;
//! * epoch-reclaim pins are **amortized across operation groups**: a
//!   worker holds one guard per owned shard
//!   ([`ConcurrentIndex::reclaim_handle`]) and refreshes them every
//!   [`GROUP_OPS`] operations, making the per-op pins inside the trees
//!   nested no-fence depth increments while still bounding how long any
//!   epoch stays pinned;
//! * lookups go through `multi_lookup` in batches of `cfg.batch` (the
//!   facade dispatches each batch as dense per-shard sub-batches through
//!   the trees' software-pipelined engines); writes stay scalar as in
//!   the black-box driver.
//!
//! The result is the same [`WorkloadResult`] the black-box driver
//! produces, plus an [`AffineReport`] describing the placement, so bench
//! targets can print both modes side by side.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use optiql_sharded::ShardedIndex;

use crate::latency::Histogram;
use crate::workload::{ConcurrentIndex, ScanMode, WorkloadConfig, WorkloadResult};

/// Operations between group-pin refreshes. Large enough that the pin
/// publish + fence amortizes to noise, small enough that a shard's epoch
/// advances promptly (the reclaim regression test bounds the garbage a
/// parked worker can strand at roughly one group's retirements).
pub const GROUP_OPS: u32 = 32;

/// Per-worker pre-generated key pool length. Pools are cycled; a pool
/// much larger than any cache keeps the measured phase from replaying a
/// cached key sequence.
const POOL_LEN: usize = 1 << 16;

/// Placement summary returned by [`run_affine`].
#[derive(Debug, Clone, Default)]
pub struct AffineReport {
    /// Logical CPUs the topology probe found.
    pub cores: usize,
    /// Workers whose core-pin syscall succeeded.
    pub pinned_workers: usize,
    /// Shards owned by each worker.
    pub shards_per_worker: Vec<usize>,
}

/// Build one worker's key pool: indices drawn from `cfg.dist`, kept only
/// if the mapped key routes to a shard in `owned`. Rejection sampling —
/// ownership covers `|owned| / shards` of the blocks, so the expected
/// cost is `shards / |owned|` draws per pooled key; the pool is built
/// before the barrier, off the measured path.
fn build_pool<I: ConcurrentIndex>(
    sharded: &ShardedIndex<I>,
    cfg: &WorkloadConfig,
    owned: &[usize],
    rng: &mut SmallRng,
) -> Vec<u64> {
    let sampler = cfg.dist.sampler(cfg.preload.max(1));
    let owns = |s: usize| owned.contains(&s);
    let mut pool = Vec::with_capacity(POOL_LEN);
    // Bound the attempts so a pathological ownership/dist combination
    // (e.g. a skewed distribution whose entire mass routes elsewhere)
    // degrades to a short pool instead of an infinite loop.
    let mut attempts = POOL_LEN * sharded.shard_count().max(1) * 8;
    while pool.len() < POOL_LEN && attempts > 0 {
        attempts -= 1;
        let k = cfg.keyspace.key(sampler.sample(rng));
        if owns(sharded.shard_of(k)) {
            pool.push(k);
        }
    }
    if pool.is_empty() {
        // Ownership never matched a sampled key (tiny keyspace under a
        // coarse router): fall back to direct keys of the first owned
        // shard's blocks so the worker still drives its shards.
        let bits = sharded.router().block_bits();
        for b in 0..1024u64 {
            let k = b << bits;
            if owns(sharded.shard_of(k)) {
                pool.push(k);
            }
        }
    }
    pool
}

/// Run the measured phase in affine mode. Panics if `cfg.threads == 0`.
///
/// As [`run`](crate::workload::run), the returned [`Histogram`] carries
/// per-operation latency samples taken every `cfg.sample_every`
/// operations (empty when sampling is disabled); a batched lookup
/// records one sample for the whole `multi_lookup` call.
pub fn run_affine<I: ConcurrentIndex>(
    sharded: &ShardedIndex<I>,
    cfg: &WorkloadConfig,
) -> (WorkloadResult, Histogram, AffineReport) {
    assert!(cfg.threads > 0, "affine mode needs at least one worker");
    let affinity = sharded.affinity();
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|tid| {
                let stop = Arc::clone(&stop);
                let barrier = Arc::clone(&barrier);
                let cfg = cfg.clone();
                let affinity = affinity.clone();
                s.spawn(move || {
                    let owned = affinity.shards_of_worker(tid, cfg.threads);
                    let pinned = affinity.pin_to_shard(owned[0]);
                    let mut rng = SmallRng::seed_from_u64(0xAF1E ^ ((tid as u64) << 8));
                    let pool = build_pool(sharded, &cfg, &owned, &mut rng);
                    let mut out = WorkloadResult::default();
                    // One reclaim handle per owned shard that has a
                    // domain; guards over them are the group pins.
                    let reclaim: Vec<_> = owned
                        .iter()
                        .filter_map(|&sh| sharded.shard_at(sh).reclaim_handle())
                        .collect();
                    let mut next_insert =
                        cfg.preload + tid as u64 * (u64::MAX / 1024 / cfg.threads as u64);
                    let batch = cfg.batch.max(1);
                    let mut batch_buf: Vec<u64> = Vec::with_capacity(batch);
                    let mut cursor = 0usize;
                    let next_key = |cursor: &mut usize| {
                        let k = pool[*cursor];
                        *cursor = (*cursor + 1) % pool.len();
                        k
                    };
                    let mut hist = Histogram::new();
                    let mut op_counter = 0u32;
                    barrier.wait();
                    let mut guards: Vec<_> = reclaim.iter().map(|h| h.pin()).collect();
                    let mut group_ops = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        let die = rng.random_range(0..100);
                        let sample_this = cfg.sample_every > 0 && {
                            op_counter = op_counter.wrapping_add(1);
                            op_counter % cfg.sample_every == 0
                        };
                        let t0 = sample_this.then(Instant::now);
                        if die < cfg.mix.lookup {
                            if batch > 1 {
                                batch_buf.clear();
                                for _ in 0..batch {
                                    batch_buf.push(next_key(&mut cursor));
                                }
                                let res = sharded.multi_lookup(&batch_buf);
                                out.lookup_hits +=
                                    res.iter().filter(|r| r.is_some()).count() as u64;
                            } else if sharded.lookup(next_key(&mut cursor)).is_some() {
                                out.lookup_hits += 1;
                            }
                            out.lookups += batch as u64;
                            group_ops += batch as u32;
                        } else if die < cfg.mix.lookup + cfg.mix.update {
                            sharded.update(next_key(&mut cursor), rng.random());
                            out.updates += 1;
                            group_ops += 1;
                        } else if die < cfg.mix.lookup + cfg.mix.update + cfg.mix.insert {
                            // Fresh keys, restricted to owned shards by
                            // skipping over foreign ones.
                            let k = loop {
                                let k = cfg.keyspace.key(next_insert);
                                next_insert += 1;
                                if owned.contains(&sharded.shard_of(k)) {
                                    break k;
                                }
                            };
                            sharded.insert(k, k.wrapping_add(1));
                            out.inserts += 1;
                            group_ops += 1;
                        } else if die
                            < cfg.mix.lookup + cfg.mix.update + cfg.mix.insert + cfg.mix.remove
                        {
                            sharded.remove(next_key(&mut cursor));
                            out.removes += 1;
                            group_ops += 1;
                        } else {
                            let k = next_key(&mut cursor);
                            let len = cfg.scan_max.max(1) as usize;
                            out.scanned_entries += match cfg.scan_mode {
                                ScanMode::Count => sharded.scan_count(k, len) as u64,
                                // Stream and Materialize both drive the
                                // merged cross-shard iterator; affine mode
                                // has no reason to collect, so both stream.
                                ScanMode::Stream | ScanMode::Materialize => {
                                    let mut n = 0u64;
                                    for kv in sharded
                                        .range(
                                            std::ops::Bound::Included(k),
                                            std::ops::Bound::Unbounded,
                                        )
                                        .take(len)
                                    {
                                        std::hint::black_box(kv);
                                        n += 1;
                                    }
                                    n
                                }
                            };
                            out.scans += 1;
                            group_ops += 1;
                        }
                        if let Some(t0) = t0 {
                            hist.record(t0.elapsed().as_nanos() as u64);
                        }
                        if group_ops >= GROUP_OPS {
                            // Refresh the group pins: drop every guard
                            // (letting the shards' epochs advance), then
                            // re-pin for the next group.
                            guards.clear();
                            guards.extend(reclaim.iter().map(|h| h.pin()));
                            group_ops = 0;
                        }
                    }
                    drop(guards);
                    (out, hist, pinned)
                })
            })
            .collect();

        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Release);

        let mut total = WorkloadResult::default();
        let mut hist = Histogram::new();
        let mut report = AffineReport {
            cores: affinity.cores(),
            pinned_workers: 0,
            shards_per_worker: (0..cfg.threads)
                .map(|t| affinity.shards_of_worker(t, cfg.threads).len())
                .collect(),
        };
        for h in handles {
            let (out, th, pinned) = h.join().unwrap();
            report.pinned_workers += usize::from(pinned);
            hist.merge(&th);
            total.lookups += out.lookups;
            total.lookup_hits += out.lookup_hits;
            total.updates += out.updates;
            total.inserts += out.inserts;
            total.removes += out.removes;
            total.scans += out.scans;
            total.scanned_entries += out.scanned_entries;
            total
                .per_thread_ops
                .push(out.lookups + out.updates + out.inserts + out.removes + out.scans);
        }
        total.elapsed = start.elapsed();
        (total, hist, report)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::KeyDist;
    use crate::workload::{preload, Mix};
    use optiql_btree::BTreeOptiQL;
    use std::time::Duration;

    fn quick_cfg(mix: Mix, threads: usize, batch: usize) -> WorkloadConfig {
        let mut cfg = WorkloadConfig::new(threads, mix, KeyDist::Uniform, 40_000);
        cfg.duration = Duration::from_millis(150);
        cfg.batch = batch;
        cfg.sample_every = 0;
        cfg
    }

    #[test]
    fn affine_read_only_hits_every_lookup() {
        let s: ShardedIndex<BTreeOptiQL> = ShardedIndex::with_block_bits(4, 8);
        let mut cfg = quick_cfg(Mix::YCSB_C, 2, 8);
        cfg.sample_every = 4;
        preload(&s, &cfg);
        let (r, hist, rep) = run_affine(&s, &cfg);
        assert!(r.lookups > 0);
        assert_eq!(r.lookups, r.lookup_hits, "dense preload: all owned hits");
        assert_eq!(r.lookups % 8, 0, "lookups issued in whole batches");
        assert_eq!(rep.shards_per_worker, vec![2, 2]);
        assert!(rep.cores >= 1);
        assert!(hist.count() > 0, "sampling enabled: histogram fills");
        assert!(hist.quantile(0.99) >= hist.quantile(0.50));
    }

    #[test]
    fn affine_mixed_workload_stays_consistent() {
        let s: ShardedIndex<BTreeOptiQL> = ShardedIndex::with_block_bits(4, 8);
        let cfg = quick_cfg(Mix::new(50, 30, 10, 10), 3, 4);
        preload(&s, &cfg);
        let before = s.len();
        let (r, _, _) = run_affine(&s, &cfg);
        assert!(r.lookups > 0 && r.updates > 0);
        assert!(r.inserts > 0 && r.removes > 0);
        // Size accounting: preload + inserts - successful removes; we
        // only know bounds (removes may miss), so sanity-check range.
        assert!(s.len() <= before + r.inserts as usize);
    }

    #[test]
    fn affine_workers_only_touch_owned_shards() {
        // 4 shards, 4 workers: worker t owns exactly shard t. Preload,
        // run a write-heavy affine phase, then verify every shard's op
        // count grew — and that per-shard growth equals what the owning
        // worker did (ownership is real, not advisory).
        let s: ShardedIndex<BTreeOptiQL> = ShardedIndex::with_block_bits(4, 8);
        let cfg = quick_cfg(Mix::UPDATE_ONLY, 4, 1);
        preload(&s, &cfg);
        let mut before = Vec::new();
        s.for_each_shard(|_, sh| before.push(sh.index_stats().ops));
        let (r, _, _) = run_affine(&s, &cfg);
        let mut after = Vec::new();
        s.for_each_shard(|_, sh| after.push(sh.index_stats().ops));
        let grown: u64 = after.iter().zip(&before).map(|(a, b)| a - b).sum();
        assert_eq!(grown, r.updates, "all updates landed on shards");
        let touched = after.iter().zip(&before).filter(|(a, b)| a > b).count();
        assert_eq!(touched, 4, "every worker drove its own shard");
    }

    #[test]
    fn single_worker_owns_everything() {
        let s: ShardedIndex<BTreeOptiQL> = ShardedIndex::with_block_bits(4, 8);
        let cfg = quick_cfg(Mix::YCSB_C, 1, 1);
        preload(&s, &cfg);
        let (r, _, rep) = run_affine(&s, &cfg);
        assert!(r.lookups > 0);
        assert_eq!(rep.shards_per_worker, vec![4]);
    }
}
