//! Thread pinning (paper §7.1: "threads are pinned to hardware
//! hyperthreads to avoid migrations by the OS scheduler").
//!
//! On Linux this uses `sched_setaffinity`; elsewhere (or when the host has
//! a single CPU) it is a no-op. Benchmarks call it best-effort.

/// Number of logical CPUs visible to this process.
pub fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pin the calling thread to `core % num_cpus()`. Returns `true` when the
/// affinity call succeeded.
#[cfg(target_os = "linux")]
pub fn pin_thread(core: usize) -> bool {
    let ncpu = num_cpus();
    if ncpu <= 1 {
        return false;
    }
    let target = core % ncpu;
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_SET(target, &mut set);
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
    }
}

/// Non-Linux fallback: no-op.
#[cfg(not(target_os = "linux"))]
pub fn pin_thread(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_cpus_is_positive() {
        assert!(num_cpus() >= 1);
    }

    #[test]
    fn pin_does_not_crash() {
        // Result depends on the host; only the call's safety is asserted.
        let _ = pin_thread(0);
        let _ = pin_thread(1_000);
    }
}
