//! Key distributions for workload generation.
//!
//! The paper uses a uniform random distribution for low-contention
//! experiments and the **self-similar** distribution of Gray et al. \[17\]
//! ("Quickly Generating Billion-Record Synthetic Databases") with skew
//! factor 0.2 for contended ones — 80% of accesses target 20% of the keys,
//! recursively at every scale. A YCSB-style Zipfian generator is included
//! as an extension.

use rand::Rng;

/// A distribution over key indices `0..n`.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Uniform over `0..n` (paper: low contention).
    Uniform,
    /// Self-similar with skew `h`: a fraction `1-h` of accesses go to the
    /// first `h·n` keys (paper: `h = 0.2` ⇒ "80% of accesses focused on
    /// 20% of the keys"). The key space is *dense*: index 0 is the
    /// hottest.
    SelfSimilar {
        /// Skew factor in `(0, 0.5)`; 0.2 reproduces the paper.
        skew: f64,
    },
    /// Zipfian with parameter `theta` (YCSB-style, extension).
    Zipfian {
        /// Skew parameter in `(0, 1)`; 0.99 is the YCSB default.
        theta: f64,
    },
}

impl KeyDist {
    /// The paper's high-contention configuration.
    pub fn self_similar_02() -> Self {
        KeyDist::SelfSimilar { skew: 0.2 }
    }

    /// Build a sampler for a key space of `n` indices.
    pub fn sampler(&self, n: u64) -> Sampler {
        assert!(n > 0);
        match *self {
            KeyDist::Uniform => Sampler::Uniform { n },
            KeyDist::SelfSimilar { skew } => {
                assert!(skew > 0.0 && skew < 1.0);
                Sampler::SelfSimilar {
                    n,
                    exp: skew.ln() / (1.0 - skew).ln(),
                }
            }
            KeyDist::Zipfian { theta } => {
                assert!(theta > 0.0 && theta < 1.0);
                // Precompute the harmonic normalizers (Gray et al. §3.2).
                let zetan = zeta(n, theta);
                let zeta2 = zeta(2, theta);
                let alpha = 1.0 / (1.0 - theta);
                let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
                Sampler::Zipfian {
                    n,
                    theta,
                    zetan,
                    alpha,
                    eta,
                }
            }
        }
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Exact for small n; integral approximation for large n keeps setup
    // fast without visibly distorting the distribution.
    if n <= 10_000_000 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let tail = ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta);
        head + tail
    }
}

/// Materialized sampler (cheap per-draw, no allocation).
#[derive(Debug, Clone)]
pub enum Sampler {
    /// See [`KeyDist::Uniform`].
    Uniform {
        /// Key-space size.
        n: u64,
    },
    /// See [`KeyDist::SelfSimilar`].
    SelfSimilar {
        /// Key-space size.
        n: u64,
        /// Precomputed exponent `ln(h) / ln(1-h)`.
        exp: f64,
    },
    /// See [`KeyDist::Zipfian`].
    Zipfian {
        /// Key-space size.
        n: u64,
        /// Skew parameter.
        theta: f64,
        /// `zeta(n, theta)`.
        zetan: f64,
        /// `1 / (1 - theta)`.
        alpha: f64,
        /// YCSB eta.
        eta: f64,
    },
}

impl Sampler {
    /// Draw a key index in `0..n`.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        match *self {
            Sampler::Uniform { n } => rng.random_range(0..n),
            Sampler::SelfSimilar { n, exp } => {
                let u: f64 = rng.random();
                // Gray et al.: floor(n * u^(ln h / ln(1-h))); index 0 is
                // hottest and heat decays self-similarly.
                let x = (n as f64 * u.powf(exp)) as u64;
                x.min(n - 1)
            }
            Sampler::Zipfian {
                n,
                theta,
                zetan,
                alpha,
                eta,
            } => {
                let u: f64 = rng.random();
                let uz = u * zetan;
                if uz < 1.0 {
                    0
                } else if uz < 1.0 + 0.5f64.powf(theta) {
                    1
                } else {
                    let x = (n as f64 * (eta * u - eta + 1.0).powf(alpha)) as u64;
                    x.min(n - 1)
                }
            }
        }
    }
}

/// Map a dense key index to an actual key.
///
/// * `Dense` — identity; the paper's default ("we make the key space dense
///   ... to increase the stress on the lock").
/// * `Sparse` — a Fibonacci/xor mixer (invertible), producing keys spread
///   across the full 64-bit space; reproduces §7.6's sparse-integer-keys
///   setup that triggers ART lazy expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySpace {
    /// Identity mapping: key = index.
    Dense,
    /// Bit-mixed mapping: keys scatter over the whole 64-bit domain.
    Sparse,
}

impl KeySpace {
    /// Map an index to a key.
    #[inline]
    pub fn key(&self, index: u64) -> u64 {
        match self {
            KeySpace::Dense => index,
            KeySpace::Sparse => mix64(index),
        }
    }
}

/// SplitMix64 finalizer — a bijection on `u64`.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn histogram(s: &Sampler, n: u64, draws: usize) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut h = vec![0u64; n as usize];
        for _ in 0..draws {
            h[s.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_is_flat() {
        let s = KeyDist::Uniform.sampler(100);
        let h = histogram(&s, 100, 200_000);
        let expect = 2_000.0;
        for (i, c) in h.iter().enumerate() {
            let dev = (*c as f64 - expect).abs() / expect;
            assert!(dev < 0.25, "bucket {i} deviates {dev}");
        }
    }

    #[test]
    fn self_similar_obeys_80_20() {
        let n = 10_000u64;
        let s = KeyDist::self_similar_02().sampler(n);
        let h = histogram(&s, n, 400_000);
        let hot: u64 = h.iter().take((n / 5) as usize).sum();
        let total: u64 = h.iter().sum();
        let frac = hot as f64 / total as f64;
        assert!(
            (0.78..=0.82).contains(&frac),
            "hot fraction {frac} should be ≈ 0.8"
        );
        // Recursive self-similarity: 64% of accesses in the hottest 4%.
        let hotter: u64 = h.iter().take((n / 25) as usize).sum();
        let frac2 = hotter as f64 / total as f64;
        assert!(
            (0.61..=0.67).contains(&frac2),
            "recursive hot fraction {frac2} should be ≈ 0.64"
        );
    }

    #[test]
    fn self_similar_first_256_of_dense_100m_get_16_percent() {
        // The paper's example: "following this distribution, the first 256
        // keys would accept 16% of the total accesses" (100M keys, h=0.2).
        let n = 100_000_000u64;
        let s = KeyDist::self_similar_02().sampler(n);
        let mut rng = SmallRng::seed_from_u64(7);
        let draws = 400_000;
        let mut hits = 0u64;
        for _ in 0..draws {
            if s.sample(&mut rng) < 256 {
                hits += 1;
            }
        }
        let frac = hits as f64 / draws as f64;
        assert!(
            (0.14..=0.18).contains(&frac),
            "first-256 fraction {frac} should be ≈ 0.16"
        );
    }

    #[test]
    fn zipfian_is_heavily_skewed() {
        let n = 10_000u64;
        let s = KeyDist::Zipfian { theta: 0.99 }.sampler(n);
        let h = histogram(&s, n, 200_000);
        let total: u64 = h.iter().sum();
        assert!(h[0] as f64 / total as f64 > 0.05, "rank 0 should be hot");
        let top10: u64 = h.iter().take(10).sum();
        assert!(top10 as f64 / total as f64 > 0.3);
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for dist in [
            KeyDist::Uniform,
            KeyDist::self_similar_02(),
            KeyDist::Zipfian { theta: 0.5 },
        ] {
            for n in [1u64, 2, 7, 1000] {
                let s = dist.sampler(n);
                for _ in 0..2_000 {
                    assert!(s.sample(&mut rng) < n);
                }
            }
        }
    }

    #[test]
    fn mix64_is_injective_on_a_window() {
        use std::collections::HashSet;
        let set: HashSet<u64> = (0..100_000u64).map(mix64).collect();
        assert_eq!(set.len(), 100_000);
    }

    #[test]
    fn keyspace_mapping() {
        assert_eq!(KeySpace::Dense.key(42), 42);
        assert_ne!(KeySpace::Sparse.key(42), 42);
        assert_eq!(KeySpace::Sparse.key(42), mix64(42));
    }
}
