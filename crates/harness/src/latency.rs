//! Log-bucketed latency histogram (HdrHistogram-style), accurate to ~3%
//! relative error, supporting the paper's tail percentiles up to p99.999
//! (Figure 12).

/// Sub-buckets per power-of-two bucket (2^5 ⇒ ≤ ~3.1% relative error).
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Covers values up to 2^40 ns ≈ 18 minutes.
const BUCKETS: usize = 40;

/// Latency histogram over `u64` values (nanoseconds by convention).
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
    sum: u128,
}

impl std::fmt::Debug for Histogram {
    /// Summary form (bucket contents elided: 1280 counters).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS * SUB],
            total: 0,
            max: 0,
            min: u64::MAX,
            sum: 0,
        }
    }

    #[inline]
    fn index(value: u64) -> usize {
        let v = value.max(1);
        let msb = 63 - v.leading_zeros();
        if msb < SUB_BITS {
            // Values below SUB fall in the first linear region.
            return (v as usize).min(SUB - 1);
        }
        let bucket = (msb - SUB_BITS + 1) as usize;
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) & (SUB as u64 - 1)) as usize;
        (bucket * SUB + sub).min(BUCKETS * SUB - 1)
    }

    /// Representative (upper-bound) value of an index.
    fn value_of(idx: usize) -> u64 {
        let bucket = idx / SUB;
        let sub = (idx % SUB) as u64;
        if bucket == 0 {
            return sub;
        }
        let shift = bucket as u32 - 1;
        ((SUB as u64) + sub) << shift
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
        self.sum += value as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q ∈ \[0, 1\]` (within bucket resolution).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::value_of(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        self.sum += other.sum;
    }

    /// The paper's Figure 12 percentile ladder:
    /// min, p50, p90, p99, p99.9, p99.99, p99.999.
    pub fn paper_percentiles(&self) -> [(String, u64); 7] {
        [
            ("min".into(), self.min()),
            ("50%".into(), self.quantile(0.50)),
            ("90%".into(), self.quantile(0.90)),
            ("99%".into(), self.quantile(0.99)),
            ("99.9%".into(), self.quantile(0.999)),
            ("99.99%".into(), self.quantile(0.9999)),
            ("99.999%".into(), self.quantile(0.99999)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB as u64 - 1);
        assert_eq!(h.quantile(1.0), SUB as u64 - 1);
    }

    #[test]
    fn quantiles_track_sorted_data_within_resolution() {
        let mut h = Histogram::new();
        let data: Vec<u64> = (1..=100_000u64).collect();
        for &v in &data {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999, 0.9999] {
            let exact = data[((q * data.len() as f64) as usize).min(data.len() - 1)];
            let approx = h.quantile(q);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.05, "q={q}: approx {approx} vs exact {exact}");
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 1..5_000u64 {
            a.record(v);
            c.record(v);
        }
        for v in 5_000..50_000u64 {
            b.record(v * 3);
            c.record(v * 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.min(), c.min());
        for q in [0.1, 0.5, 0.9, 0.999] {
            assert_eq!(a.quantile(q), c.quantile(q));
        }
    }

    #[test]
    fn huge_values_saturate_without_panicking() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(0.5) > 0);
    }

    #[test]
    fn paper_percentile_ladder_is_monotone() {
        let mut h = Histogram::new();
        let mut x = 12345u64;
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 1_000_000);
        }
        let ladder = h.paper_percentiles();
        for w in ladder.windows(2) {
            assert!(w[0].1 <= w[1].1, "{} > {}", w[0].0, w[1].0);
        }
    }
}
