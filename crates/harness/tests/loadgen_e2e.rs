//! End-to-end: the closed-loop load generator against an in-process
//! server — the same pairing the CI smoke job runs across two OS
//! processes.

use optiql_harness::loadgen::{self, LoadgenConfig};
use optiql_harness::KeyDist;
use optiql_server::server::{start, BackendKind, Dispatch, ServerConfig, ServerHandle};

fn serve(dispatch: Dispatch, preload: u64) -> ServerHandle {
    start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        backend: BackendKind::Btree,
        workers: 1,
        dispatch,
        preload,
        max_group: 64,
        ..ServerConfig::default()
    })
    .expect("server start")
}

#[test]
fn scripted_verify_passes_against_a_live_server() {
    let h = serve(Dispatch::Grouped, 100);
    loadgen::verify(&h.addr().to_string()).expect("verify suite");
    let stats = h.shutdown();
    assert_eq!(stats.proto_errors, 0);
}

#[test]
fn pipelined_read_load_hits_every_preloaded_key() {
    let preload = 10_000;
    let h = serve(Dispatch::Grouped, preload);
    let cfg = LoadgenConfig {
        addr: h.addr().to_string(),
        connections: 2,
        pipeline: 8,
        ops_per_conn: 2_000,
        read_pct: 100,
        keys: preload, // dense preload → every uniform key hits
        ..LoadgenConfig::default()
    };
    let r = loadgen::run(&cfg).expect("loadgen run");
    assert_eq!(r.requests, 4_000);
    assert_eq!(r.ops, 4_000);
    assert_eq!(r.hits, 4_000, "misses against a fully-preloaded keyspace");
    assert_eq!(r.errors, 0);
    assert!(r.hist.count() > 0, "latency must be sampled");
    assert!(r.throughput() > 0.0);

    let stats = h.shutdown();
    assert!(stats.requests >= 4_000);
    assert!(
        stats.batched_ops > 0,
        "depth-8 pipelines must reach the batch engines: {stats:?}"
    );
}

#[test]
fn mixed_zipfian_write_load_round_trips() {
    let preload = 1_000;
    let h = serve(Dispatch::Grouped, preload);
    let cfg = LoadgenConfig {
        addr: h.addr().to_string(),
        connections: 2,
        pipeline: 16,
        ops_per_conn: 1_500,
        read_pct: 50,
        dist: KeyDist::Zipfian { theta: 0.99 },
        keys: preload,
        mget: 4,
        ..LoadgenConfig::default()
    };
    let r = loadgen::run(&cfg).expect("loadgen run");
    assert_eq!(r.errors, 0);
    assert!(r.ops >= r.requests, "MGETs count per key");
    let stats = h.shutdown();
    assert_eq!(stats.proto_errors, 0);
}

#[test]
fn loadgen_shutdown_helper_stops_the_server() {
    let h = serve(Dispatch::PerOp, 10);
    loadgen::shutdown(&h.addr().to_string()).expect("shutdown ack");
    let stats = h.join();
    assert!(stats.requests >= 1);
}
