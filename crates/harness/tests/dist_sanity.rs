//! Statistical sanity checks for the workload key distributions.
//!
//! The figure benches are only as meaningful as the key generators behind
//! them, so this suite pins down the distributional properties the paper
//! relies on: the self-similar(0.2) generator really concentrates ~80% of
//! accesses on the first 20% of a dense key space, the Zipfian generator
//! stays in range and skews harder as theta grows, and the uniform
//! generator passes a chi-square smoke test. Fixed seeds keep every check
//! deterministic.

use optiql_harness::dist::KeyDist;
use rand::{rngs::SmallRng, SeedableRng};

fn draw_histogram(dist: &KeyDist, n: u64, draws: usize, seed: u64) -> Vec<u64> {
    let s = dist.sampler(n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut h = vec![0u64; n as usize];
    for _ in 0..draws {
        h[s.sample(&mut rng) as usize] += 1;
    }
    h
}

#[test]
fn self_similar_02_concentrates_80_percent_on_20_percent() {
    for n in [1_000u64, 50_000] {
        let h = draw_histogram(&KeyDist::self_similar_02(), n, 400_000, 0xD15);
        let total: u64 = h.iter().sum();
        let hot: u64 = h.iter().take((n / 5) as usize).sum();
        let frac = hot as f64 / total as f64;
        assert!(
            (0.78..=0.82).contains(&frac),
            "n={n}: hottest 20% drew {frac:.3} of accesses, expected ≈0.80"
        );
    }
}

#[test]
fn self_similar_is_recursively_skewed() {
    // Self-similarity: the 80/20 rule applies again inside the hot set,
    // i.e. 64% of accesses land on the hottest 4%.
    let n = 50_000u64;
    let h = draw_histogram(&KeyDist::self_similar_02(), n, 400_000, 0xD16);
    let total: u64 = h.iter().sum();
    let hotter: u64 = h.iter().take((n / 25) as usize).sum();
    let frac = hotter as f64 / total as f64;
    assert!(
        (0.61..=0.67).contains(&frac),
        "hottest 4% drew {frac:.3} of accesses, expected ≈0.64"
    );
}

#[test]
fn zipfian_samples_stay_in_range_for_all_theta() {
    for theta in [0.1, 0.5, 0.9, 0.99] {
        for n in [1u64, 2, 10, 10_000] {
            let s = KeyDist::Zipfian { theta }.sampler(n);
            let mut rng = SmallRng::seed_from_u64(0x21F);
            for _ in 0..20_000 {
                let x = s.sample(&mut rng);
                assert!(x < n, "theta={theta} n={n}: sample {x} out of range");
            }
        }
    }
}

#[test]
fn zipfian_skew_is_monotone_in_theta() {
    // A higher theta must concentrate more mass on the hottest ranks.
    let n = 10_000u64;
    let draws = 300_000;
    let mut prev_top = 0.0f64;
    for theta in [0.2, 0.5, 0.8, 0.99] {
        let h = draw_histogram(&KeyDist::Zipfian { theta }, n, draws, 0x21E);
        let total: u64 = h.iter().sum();
        let top100: u64 = h.iter().take(100).sum();
        let frac = top100 as f64 / total as f64;
        assert!(
            frac > prev_top,
            "theta={theta}: top-100 mass {frac:.4} not above previous {prev_top:.4}"
        );
        prev_top = frac;
    }
    // At YCSB's default the skew is substantial.
    assert!(prev_top > 0.4, "theta=0.99 top-100 mass only {prev_top:.4}");
}

#[test]
fn uniform_passes_chi_square_smoke() {
    // Chi-square goodness-of-fit against the flat distribution. With
    // k-1 = 99 degrees of freedom the 99.9th percentile is ≈148.2; a
    // correct generator with a fixed seed sits far below, a misweighted
    // one (e.g. modulo bias over a non-power-of-two space) far above.
    let k = 100u64;
    let draws = 500_000usize;
    let h = draw_histogram(&KeyDist::Uniform, k, draws, 0xC41);
    let expect = draws as f64 / k as f64;
    let chi2: f64 = h
        .iter()
        .map(|&c| {
            let d = c as f64 - expect;
            d * d / expect
        })
        .sum();
    assert!(chi2 < 148.2, "chi-square statistic {chi2:.1} too large");
    // Guard against a degenerate "too perfect" histogram as well (e.g. a
    // round-robin generator masquerading as random): P(chi2 < 57.3) ≈ 0.01%.
    assert!(
        chi2 > 57.3,
        "chi-square statistic {chi2:.1} suspiciously low"
    );
}

#[test]
fn uniform_covers_the_whole_space() {
    let n = 256u64;
    let h = draw_histogram(&KeyDist::Uniform, n, 100_000, 0xC42);
    assert!(
        h.iter().all(|&c| c > 0),
        "some bucket never drawn in 100k samples"
    );
}
