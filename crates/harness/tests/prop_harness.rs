//! Property tests for the measurement substrates: distribution samplers
//! and the latency histogram must satisfy their mathematical contracts for
//! arbitrary parameters, or every benchmark number built on them is noise.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use optiql_harness::latency::Histogram;
use optiql_harness::{KeyDist, KeySpace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn samplers_always_stay_in_range(
        n in 1u64..1_000_000,
        seed in any::<u64>(),
        skew in 0.05f64..0.45,
        theta in 0.1f64..0.95,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for dist in [
            KeyDist::Uniform,
            KeyDist::SelfSimilar { skew },
            KeyDist::Zipfian { theta },
        ] {
            let s = dist.sampler(n);
            for _ in 0..256 {
                let x = s.sample(&mut rng);
                prop_assert!(x < n, "{dist:?} produced {x} for n={n}");
            }
        }
    }

    #[test]
    fn self_similar_hot_fraction_tracks_skew(
        skew in 0.1f64..0.4,
        seed in any::<u64>(),
    ) {
        // By construction, a fraction (1 - skew) of draws lands in the
        // first skew*n keys.
        let n = 100_000u64;
        let s = KeyDist::SelfSimilar { skew }.sampler(n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let draws = 60_000;
        let hot_bound = (skew * n as f64) as u64;
        let hits = (0..draws).filter(|_| s.sample(&mut rng) < hot_bound).count();
        let frac = hits as f64 / draws as f64;
        let expect = 1.0 - skew;
        prop_assert!(
            (frac - expect).abs() < 0.04,
            "skew={skew}: hot fraction {frac} vs expected {expect}"
        );
    }

    #[test]
    fn histogram_quantiles_bounded_by_min_max(values in prop::collection::vec(1u64..u64::MAX / 2, 1..2_000)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let (lo, hi) = (h.min(), h.max());
        prop_assert_eq!(h.count(), values.len() as u64);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let x = h.quantile(q);
            prop_assert!(x <= hi, "q={q}: {x} > max {hi}");
            prop_assert!(x >= lo.min(x), "q={q}");
        }
        // Quantiles are monotone in q.
        let ladder: Vec<u64> = [0.1, 0.5, 0.9, 0.99].iter().map(|&q| h.quantile(q)).collect();
        prop_assert!(ladder.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn histogram_quantile_relative_error_is_bounded(
        values in prop::collection::vec(1u64..1_000_000_000, 64..2_000),
    ) {
        let mut h = Histogram::new();
        let mut sorted = values.clone();
        for &v in &values {
            h.record(v);
        }
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let exact = sorted[((q * sorted.len() as f64) as usize).min(sorted.len() - 1)];
            let approx = h.quantile(q);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(err < 0.10, "q={q}: approx {approx} vs exact {exact} (err {err})");
        }
    }

    #[test]
    fn histogram_merge_is_commutative_on_quantiles(
        a in prop::collection::vec(1u64..1_000_000, 1..500),
        b in prop::collection::vec(1u64..1_000_000, 1..500),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for &v in &a { ha.record(v); }
        for &v in &b { hb.record(v); }
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.count(), ba.count());
        for q in [0.1, 0.5, 0.9, 0.999] {
            prop_assert_eq!(ab.quantile(q), ba.quantile(q));
        }
    }

    #[test]
    fn sparse_keyspace_is_injective(indices in prop::collection::hash_set(0u64..10_000_000, 2..500)) {
        let keys: std::collections::HashSet<u64> =
            indices.iter().map(|&i| KeySpace::Sparse.key(i)).collect();
        prop_assert_eq!(keys.len(), indices.len());
    }
}
