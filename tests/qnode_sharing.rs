//! The queue-node pool (§6.3) is a process-global resource shared by every
//! queue-based lock in every index. These tests exercise that sharing:
//! many locks, many threads, deep nesting — the pool must never leak and
//! IDs must never collide while live.

use std::sync::Arc;

use optiql::{qnode, ExclusiveLock, IndexLock, McsLock, McsRwLock, OptiQL};

#[test]
fn nested_acquisitions_use_distinct_qnodes() {
    // A thread holding several OptiQL locks at once (the B+-tree merge
    // case needs two; go deeper to stress the pool).
    let locks: Vec<OptiQL> = (0..16).map(|_| OptiQL::new()).collect();
    let tokens: Vec<_> = locks.iter().map(|l| l.x_lock()).collect();
    let ids: std::collections::HashSet<u16> = tokens.iter().map(|t| t.qnode_id()).collect();
    assert_eq!(
        ids.len(),
        tokens.len(),
        "live queue node IDs must be unique"
    );
    for (l, t) in locks.iter().zip(tokens) {
        l.x_unlock(t);
    }
}

#[test]
fn mixed_lock_families_share_the_pool() {
    let a = OptiQL::new();
    let b = McsLock::new();
    let c = McsRwLock::new();
    let ta = a.x_lock();
    let tb = b.x_lock();
    let tc = c.x_lock();
    c.x_unlock(tc);
    // MCS-RW readers also draw queue nodes from the shared pool.
    let v = c.r_lock().expect("pessimistic r_lock always grants");
    assert!(c.r_unlock(v));
    b.x_unlock(tb);
    a.x_unlock(ta);
}

#[test]
fn pool_supports_heavy_concurrent_reuse() {
    let locks: Arc<Vec<OptiQL>> = Arc::new((0..64).map(|_| OptiQL::new()).collect());
    let before = qnode::global_free_len();
    let hs: Vec<_> = (0..8)
        .map(|seed| {
            let locks = Arc::clone(&locks);
            std::thread::spawn(move || {
                let mut x = seed as u64 + 1;
                for _ in 0..20_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let l = &locks[(x % 64) as usize];
                    let t = l.x_lock();
                    l.x_unlock(t);
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    // All nodes must have been recycled (allowing for per-thread caches of
    // exited threads being returned on drop).
    let after = qnode::global_free_len();
    assert!(
        after >= before.saturating_sub(64),
        "pool leaked: before={before} after={after}"
    );
}

#[test]
fn wait_chain_across_lock_types_resolves() {
    // T1 holds A; T2 queues on A while holding B; main queues on B.
    // All queue nodes come from the same pool; everything must drain.
    let a = Arc::new(OptiQL::new());
    let b = Arc::new(McsLock::new());
    let ta = a.x_lock();
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let t2 = std::thread::spawn(move || {
        let tb = b2.x_lock();
        let ta2 = a2.x_lock(); // blocks until main releases
        a2.x_unlock(ta2);
        b2.x_unlock(tb);
    });
    std::thread::sleep(std::time::Duration::from_millis(50));
    a.x_unlock(ta); // lets T2 proceed and finish
    t2.join().unwrap();
    let tb = b.x_lock();
    b.x_unlock(tb);
}
