//! Torture tests: tiny nodes + concurrent writers maximize the frequency of
//! structural modifications racing with traversals — split cascades, root
//! growth, merges and collapses all fire constantly. Post-conditions are
//! exact.

use std::sync::Arc;

use optiql_btree::BPlusTree;

type TinyOptiQL = BPlusTree<optiql::OptLock, optiql::OptiQL, 4, 4>;
type TinyOptLock = BPlusTree<optiql::OptLock, optiql::OptLock, 4, 4>;
type TinyMcsRw = BPlusTree<optiql::McsRwLock, optiql::McsRwLock, 4, 4>;

/// Scale writer counts with the machine, bounded both ways: at least 4
/// so single-core CI still forces real interleaving through preemption,
/// at most 16 so wide boxes don't turn exact post-condition sweeps into
/// a minutes-long run.
fn torture_threads() -> u64 {
    std::thread::available_parallelism()
        .map_or(4, |n| n.get() as u64)
        .clamp(4, 16)
}

fn smo_storm<IL, LL>(tree: Arc<BPlusTree<IL, LL, 4, 4>>)
where
    IL: optiql::IndexLock,
    LL: optiql::IndexLock,
{
    let threads: u64 = torture_threads();
    const PER: u64 = 3_000;
    let hs: Vec<_> = (0..threads)
        .map(|tid| {
            let t = Arc::clone(&tree);
            std::thread::spawn(move || {
                // Interleaved key stripes force adjacent-leaf contention.
                let key = |i: u64| i * threads + tid;
                for i in 0..PER {
                    assert_eq!(t.insert(key(i), i), None);
                    // Immediately read back through a fresh traversal.
                    assert_eq!(t.lookup(key(i)), Some(i));
                }
                // Delete the lower half (drives merges/unlinks), then
                // reinsert a quarter (drives fresh splits into merged
                // space).
                for i in 0..PER / 2 {
                    assert_eq!(t.remove(key(i)), Some(i));
                }
                for i in 0..PER / 4 {
                    assert_eq!(t.insert(key(i), i + 1), None);
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    let expected = (PER / 2 + PER / 4) * threads;
    assert_eq!(tree.len(), expected as usize);
    assert_eq!(tree.check_invariants(), expected as usize);
    // Exact membership.
    for tid in 0..threads {
        let key = |i: u64| i * threads + tid;
        for i in 0..PER {
            let expect = if i < PER / 4 {
                Some(i + 1)
            } else if i < PER / 2 {
                None
            } else {
                Some(i)
            };
            assert_eq!(tree.lookup(key(i)), expect, "tid {tid} i {i}");
        }
    }
    // SMOs must actually have happened for this to be a torture test.
    let stats = tree.stats();
    assert!(stats.leaf_splits > 100, "{stats:?}");
}

#[test]
fn btree_optiql_smo_storm() {
    smo_storm(Arc::new(TinyOptiQL::new()));
}

#[test]
fn btree_optlock_smo_storm() {
    smo_storm(Arc::new(TinyOptLock::new()));
}

#[test]
fn btree_mcs_rw_smo_storm() {
    smo_storm(Arc::new(TinyMcsRw::new()));
}

#[test]
fn art_mixed_prefix_storm() {
    // Keys engineered so inserts constantly split prefixes and grow nodes
    // at every level while lookups race.
    let art: Arc<optiql_art::ArtOptiQL> = Arc::new(optiql_art::ArtOptiQL::new());
    let threads: u64 = torture_threads();
    const PER: u64 = 2_500;
    let hs: Vec<_> = (0..threads)
        .map(|tid| {
            let t = Arc::clone(&art);
            std::thread::spawn(move || {
                for i in 0..PER {
                    let base = i * threads + tid;
                    // Three families: dense low, byte-6 pairs, sparse high.
                    let k = match i % 3 {
                        0 => base,
                        1 => (base << 8) | 0xA5,
                        _ => base.wrapping_mul(0x9E3779B97F4A7C15) | (1 << 63),
                    };
                    t.insert(k, base);
                    assert_eq!(t.lookup(k), Some(base), "read-own-write {k:#x}");
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    let n = art.check_invariants();
    assert_eq!(n, art.len());
    let stats = art.stats();
    assert!(stats.lazy_expansions > 0 && stats.grows > 0, "{stats:?}");
}

#[test]
fn btree_scan_during_smo_storm_stays_ordered() {
    let tree: Arc<TinyOptiQL> = Arc::new(TinyOptiQL::new());
    for k in 0..2_000u64 {
        tree.insert(k * 2, k);
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    // Writers churn odd-striped keys above the stable range; half the
    // torture width is plenty since each writer is a tight insert/remove
    // loop.
    let writer_n = (torture_threads() / 2).clamp(2, 8);
    let writers: Vec<_> = (0..writer_n)
        .map(|tid| {
            let t = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let k = 4_001 + (i * writer_n + tid) * 2;
                    t.insert(k, i);
                    t.remove(k);
                    i += 1;
                }
            })
        })
        .collect();
    for _ in 0..300 {
        let got = tree.scan(500, 40);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "ordered");
        // Stable keys (evens ≤ 3998) in range must be complete.
        let evens: Vec<u64> = got
            .iter()
            .map(|p| p.0)
            .filter(|k| *k <= 3_998 && k % 2 == 0)
            .collect();
        for w in evens.windows(2) {
            assert_eq!(
                w[1],
                w[0] + 2,
                "stable key missed between {} and {}",
                w[0],
                w[1]
            );
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    tree.check_invariants();
}
