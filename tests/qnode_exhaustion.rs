//! Pool-exhaustion behaviour (§6.3). This test drains the process-global
//! queue-node pool, so it lives in its own integration-test binary —
//! cargo runs each test file in a separate process, keeping the drained
//! pool away from every other test.

use optiql::qnode;

/// Serialize the tests in this binary: they all drain or count the one
/// process-global pool and would corrupt each other's invariants if cargo
/// ran them on parallel test threads.
static POOL_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn exhaustion_is_detected_not_corrupted() {
    let _serial = POOL_TESTS.lock().unwrap();
    // try_alloc must return None (not panic / not hand out duplicates)
    // when the pool runs dry, and recover fully afterwards.
    let mut held = Vec::new();
    while let Some(id) = qnode::try_alloc() {
        held.push(id);
        if held.len() > optiql::word::MAX_QNODES {
            panic!("allocated more IDs than the pool holds");
        }
    }
    let unique: std::collections::HashSet<u16> = held.iter().copied().collect();
    assert_eq!(unique.len(), held.len(), "duplicate IDs handed out");
    assert!(qnode::try_alloc().is_none());
    for id in held.drain(..) {
        qnode::free(id);
    }
    // Pool must be usable again.
    let id = qnode::try_alloc().expect("pool recovered");
    qnode::free(id);
}

#[test]
fn exhaustion_is_counted_when_stats_enabled() {
    let _serial = POOL_TESTS.lock().unwrap();
    optiql::stats::reset();
    let mut held = Vec::new();
    while let Some(id) = qnode::try_alloc() {
        held.push(id);
    }
    // The failed attempt above is the only exhaustion event; confirm a few
    // more are counted too.
    assert!(qnode::try_alloc().is_none());
    assert!(qnode::try_alloc().is_none());
    let s = optiql::stats::snapshot();
    if optiql::stats::ENABLED {
        assert!(
            s.get(optiql::stats::Event::QnodeExhausted) >= 3,
            "every dry allocation attempt must be counted"
        );
    } else {
        assert_eq!(
            s,
            optiql::stats::Snapshot::default(),
            "no-op without the feature"
        );
    }
    for id in held {
        qnode::free(id);
    }
}

#[test]
fn ids_are_recycled_under_the_1024_cap_across_threads() {
    // Far more lock acquisitions than pool slots: 8 threads × 4 locks ×
    // thousands of rounds all run inside a 1024-ID budget. Every ID handed
    // out must stay below the cap, at most `threads × live-per-thread`
    // nodes may be live at once, and the pool must end where it began.
    let _serial = POOL_TESTS.lock().unwrap();
    use optiql::{ExclusiveLock, OptiQL};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    const THREADS: usize = 8;
    const ROUNDS: usize = 2_000;

    // Drain TLS caches into the global list for an accurate baseline:
    // run the counting from fresh threads below instead of this one.
    let locks: Arc<Vec<OptiQL>> = Arc::new((0..4).map(|_| OptiQL::new()).collect());
    let live_peak = Arc::new(AtomicUsize::new(0));
    let live_now = Arc::new(AtomicUsize::new(0));
    let hs: Vec<_> = (0..THREADS)
        .map(|t| {
            let locks = Arc::clone(&locks);
            let live_peak = Arc::clone(&live_peak);
            let live_now = Arc::clone(&live_now);
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    let l = &locks[(t + i) % locks.len()];
                    let tok = l.x_lock();
                    assert!(
                        (tok.qnode_id() as usize) < optiql::word::MAX_QNODES,
                        "ID beyond the pool cap"
                    );
                    let now = live_now.fetch_add(1, Ordering::SeqCst) + 1;
                    live_peak.fetch_max(now, Ordering::SeqCst);
                    live_now.fetch_sub(1, Ordering::SeqCst);
                    l.x_unlock(tok);
                }
            })
        })
        .collect();
    for h in hs {
        h.join().unwrap();
    }
    // One node per in-flight exclusive attempt: the peak cannot exceed the
    // thread count (each thread holds at most one here), far below 1024.
    assert!(live_peak.load(Ordering::SeqCst) <= THREADS);
    // Total work vastly exceeded the cap, so recycling must have happened;
    // afterwards the whole pool is allocatable again from this thread.
    let mut all = Vec::new();
    while let Some(id) = qnode::try_alloc() {
        all.push(id);
    }
    let unique: std::collections::HashSet<u16> = all.iter().copied().collect();
    assert_eq!(unique.len(), all.len(), "recycling produced duplicates");
    // Worker-thread TLS caches returned their IDs on thread exit, so only
    // this test's own (still-running) thread cache can hold any back.
    assert!(
        all.len() >= optiql::word::MAX_QNODES - 2 * 8,
        "pool shrank: {} of {} IDs reachable",
        all.len(),
        optiql::word::MAX_QNODES
    );
    for id in all {
        qnode::free(id);
    }
}
