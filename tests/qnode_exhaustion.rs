//! Pool-exhaustion behaviour (§6.3). This test drains the process-global
//! queue-node pool, so it lives in its own integration-test binary —
//! cargo runs each test file in a separate process, keeping the drained
//! pool away from every other test.

use optiql::qnode;

#[test]
fn exhaustion_is_detected_not_corrupted() {
    // try_alloc must return None (not panic / not hand out duplicates)
    // when the pool runs dry, and recover fully afterwards.
    let mut held = Vec::new();
    while let Some(id) = qnode::try_alloc() {
        held.push(id);
        if held.len() > optiql::word::MAX_QNODES {
            panic!("allocated more IDs than the pool holds");
        }
    }
    let unique: std::collections::HashSet<u16> = held.iter().copied().collect();
    assert_eq!(unique.len(), held.len(), "duplicate IDs handed out");
    assert!(qnode::try_alloc().is_none());
    for id in held.drain(..) {
        qnode::free(id);
    }
    // Pool must be usable again.
    let id = qnode::try_alloc().expect("pool recovered");
    qnode::free(id);
}
