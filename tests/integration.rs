//! Cross-crate integration tests: the harness driving both indexes under
//! every lock configuration, with structural verification after each run.

use std::time::Duration;

use optiql_art::{ArtMcsRw, ArtOptLock, ArtOptiQL, ArtOptiQLNor};
use optiql_btree::{BTreeMcsRw, BTreeOptLock, BTreeOptiQL, BTreeOptiQLAor, BTreeOptiQLNor};
use optiql_harness::{preload, run, ConcurrentIndex, KeyDist, KeySpace, Mix, WorkloadConfig};

fn quick(mix: Mix, dist: KeyDist, keys: u64) -> WorkloadConfig {
    let mut cfg = WorkloadConfig::new(3, mix, dist, keys);
    cfg.duration = Duration::from_millis(200);
    cfg.sample_every = 32;
    cfg
}

fn drive<I: ConcurrentIndex>(index: &I, check: impl Fn() -> usize) {
    let keys = 20_000;
    for (mix, dist) in [
        (Mix::READ_ONLY, KeyDist::Uniform),
        (Mix::BALANCED, KeyDist::self_similar_02()),
        (Mix::UPDATE_ONLY, KeyDist::self_similar_02()),
        (Mix::INSERT_HEAVY, KeyDist::Uniform),
    ] {
        let cfg = quick(mix, dist, keys);
        let (r, hist) = run(index, &cfg);
        assert!(r.ops() > 0, "no progress for mix {mix:?}");
        assert!(r.throughput() > 0.0);
        if cfg.sample_every > 0 {
            assert!(hist.count() > 0, "latency sampling produced nothing");
        }
        // Structural invariants must hold after every workload phase.
        check();
    }
}

#[test]
fn btree_all_configs_survive_workload_suite() {
    macro_rules! case {
        ($ty:ty) => {{
            let tree: $ty = <$ty>::new();
            let cfg = quick(Mix::READ_ONLY, KeyDist::Uniform, 20_000);
            preload(&tree, &cfg);
            drive(&tree, || tree.check_invariants());
        }};
    }
    case!(BTreeOptLock);
    case!(BTreeOptiQL);
    case!(BTreeOptiQLNor);
    case!(BTreeOptiQLAor);
    case!(BTreeMcsRw);
}

#[test]
fn art_all_configs_survive_workload_suite() {
    macro_rules! case {
        ($ty:ty) => {{
            let art: $ty = <$ty>::new();
            let cfg = quick(Mix::READ_ONLY, KeyDist::Uniform, 20_000);
            preload(&art, &cfg);
            drive(&art, || art.check_invariants());
        }};
    }
    case!(ArtOptLock);
    case!(ArtOptiQL);
    case!(ArtOptiQLNor);
    case!(ArtMcsRw);
}

#[test]
fn art_sparse_keyspace_with_contention_expansion() {
    // The Figure 13 scenario end-to-end: sparse keys, skewed write-heavy
    // workload, aggressive contention expansion.
    let art: optiql_art::ArtTree<optiql::OptiQL> = optiql_art::ArtTree::with_expansion(16, 1);
    let mut cfg = quick(Mix::WRITE_HEAVY, KeyDist::self_similar_02(), 10_000);
    cfg.keyspace = KeySpace::Sparse;
    preload(&art, &cfg);
    let before = art.check_invariants();
    assert_eq!(before, 10_000);
    let (r, _) = run(&art, &cfg);
    assert!(r.updates > 0);
    // Every preloaded key must still be present with *some* value.
    for i in 0..10_000u64 {
        let k = KeySpace::Sparse.key(i);
        assert!(art.lookup(k).is_some(), "lost key index {i}");
    }
    art.check_invariants();
}

#[test]
fn btree_and_art_agree_under_identical_history() {
    // Apply one deterministic op sequence to both indexes; they must end
    // in the same logical state.
    let tree: BTreeOptiQL = BTreeOptiQL::new();
    let art: ArtOptiQL = ArtOptiQL::new();
    let mut x = 88172645463325252u64;
    for _ in 0..50_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = x % 5_000;
        match x % 4 {
            0 => {
                assert_eq!(tree.insert(k, x), art.insert(k, x), "insert {k}");
            }
            1 => {
                assert_eq!(tree.update(k, x), art.update(k, x), "update {k}");
            }
            2 => {
                assert_eq!(tree.remove(k), art.remove(k), "remove {k}");
            }
            _ => {
                assert_eq!(tree.lookup(k), art.lookup(k), "lookup {k}");
            }
        }
    }
    assert_eq!(tree.len(), art.len());
    assert_eq!(tree.check_invariants(), art.check_invariants());
}

#[test]
fn reclamation_keeps_memory_bounded_under_churn() {
    // Insert/remove cycles retire nodes; flushing must drain the deferred
    // queue (no unbounded growth).
    let tree: BTreeOptiQL = BTreeOptiQL::new();
    for round in 0..5u64 {
        for k in 0..5_000u64 {
            tree.insert(k * 7 + round, k);
        }
        for k in 0..5_000u64 {
            tree.remove(k * 7 + round);
        }
        tree.flush_reclamation();
    }
    assert_eq!(tree.len(), 0);
    tree.check_invariants();
}
