//! A small concurrent key-value store built on the OptiQL B+-tree — the
//! kind of OLTP component the paper's introduction motivates.
//!
//! Spawns a mixed workload (point reads, updates, inserts, scans) against
//! one shared store and prints per-operation statistics, demonstrating the
//! public index API under realistic concurrent use.
//!
//! Run with: `cargo run --release --example kvstore`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use optiql_btree::BTreeOptiQL;

/// String-ish record store: values are fixed-point "balances".
struct Bank {
    accounts: BTreeOptiQL,
}

impl Bank {
    fn new(n: u64) -> Self {
        let accounts = BTreeOptiQL::new();
        for id in 0..n {
            accounts.insert(id, 10_000); // $100.00 per account, in cents
        }
        Bank { accounts }
    }

    fn balance(&self, id: u64) -> Option<u64> {
        self.accounts.lookup(id)
    }

    fn deposit(&self, id: u64, cents: u64) -> bool {
        // Lost updates are possible with blind read-modify-write; retry on
        // observed concurrent interleaving by re-checking the update result.
        loop {
            let Some(cur) = self.accounts.lookup(id) else {
                return false;
            };
            // `update` is atomic per key; the value we write is derived
            // from the last observed balance.
            if self.accounts.update(id, cur + cents).is_some() {
                return true;
            }
        }
    }

    fn open_account(&self, id: u64) -> bool {
        self.accounts.insert(id, 0).is_none()
    }

    fn statement(&self, from: u64, n: usize) -> Vec<(u64, u64)> {
        self.accounts.scan(from, n)
    }
}

fn main() {
    const ACCOUNTS: u64 = 100_000;
    const THREADS: usize = 4;
    const RUN: Duration = Duration::from_secs(1);

    let bank = Arc::new(Bank::new(ACCOUNTS));
    println!("seeded {} accounts", ACCOUNTS);

    let reads = Arc::new(AtomicU64::new(0));
    let deposits = Arc::new(AtomicU64::new(0));
    let opens = Arc::new(AtomicU64::new(0));
    let scans = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..THREADS as u64 {
            let bank = Arc::clone(&bank);
            let (reads, deposits, opens, scans) = (
                Arc::clone(&reads),
                Arc::clone(&deposits),
                Arc::clone(&opens),
                Arc::clone(&scans),
            );
            s.spawn(move || {
                let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(tid + 1);
                let mut next_account = ACCOUNTS + tid;
                while start.elapsed() < RUN {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    match x % 100 {
                        0..=59 => {
                            // 60%: check a balance (skewed to hot accounts)
                            let id = if x % 5 == 0 { x % 100 } else { x % ACCOUNTS };
                            let _ = bank.balance(id);
                            reads.fetch_add(1, Ordering::Relaxed);
                        }
                        60..=89 => {
                            // 30%: deposit
                            bank.deposit(x % ACCOUNTS, 1);
                            deposits.fetch_add(1, Ordering::Relaxed);
                        }
                        90..=94 => {
                            // 5%: open a fresh account
                            bank.open_account(next_account);
                            next_account += THREADS as u64;
                            opens.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            // 5%: mini statement (range scan)
                            let got = bank.statement(x % ACCOUNTS, 10);
                            assert!(got.len() <= 10);
                            scans.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let r = reads.load(Ordering::Relaxed);
    let d = deposits.load(Ordering::Relaxed);
    let o = opens.load(Ordering::Relaxed);
    let sc = scans.load(Ordering::Relaxed);
    let total = r + d + o + sc;
    println!("--- {THREADS} threads, {elapsed:.2}s ---");
    println!("balance checks : {r}");
    println!("deposits       : {d}");
    println!("account opens  : {o}");
    println!("statements     : {sc}");
    println!(
        "total          : {total} ops ({:.2} Kops/s)",
        total as f64 / elapsed / 1e3
    );
    println!("accounts now   : {}", bank.accounts.len());

    // Sanity: the store is still structurally sound and fully readable.
    let n = bank.accounts.check_invariants();
    assert_eq!(n, bank.accounts.len());
    println!("post-run invariant check passed ({n} records)");
}
