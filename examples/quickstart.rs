//! Quickstart: the OptiQL lock API and both paper indexes in two minutes.
//!
//! Run with: `cargo run --release --example quickstart`

use optiql::{AdjustableOpRead, ExclusiveLock, IndexLock, OptiQL};
use optiql_art::ArtOptiQL;
use optiql_btree::BTreeOptiQL;

fn main() {
    // --- 1. The lock itself -------------------------------------------------
    let lock = OptiQL::new();

    // Optimistic read: no shared-memory write, validate afterwards.
    let v = lock.r_lock().expect("lock is free");
    // ... read data protected by the lock ...
    assert!(lock.r_unlock(v), "nothing changed: validation passes");

    // Exclusive write: writers queue FIFO and spin locally.
    let token = lock.x_lock();
    // ... modify protected data ...
    lock.x_unlock(token);

    // The version moved, so the earlier snapshot no longer validates.
    assert!(!lock.r_unlock(v));
    println!("lock: optimistic read + queued write OK");

    // Upgrade: promote a validated read to a write (used by ART, §6.2).
    let v = lock.r_lock().unwrap();
    let token = lock.try_upgrade(v).expect("no concurrent writer");
    lock.x_unlock(token);
    println!("lock: upgrade OK");

    // Adjustable opportunistic read (§5.3): keep admitting readers until
    // the writer locates its target, then close the window.
    let token = lock.x_lock_aor();
    // ... search for the write target while readers sneak in ...
    lock.x_finish_aor(token);
    // ... modify ...
    lock.x_unlock(token);
    println!("lock: adjustable opportunistic read OK");

    // --- 2. The B+-tree ------------------------------------------------------
    let tree: BTreeOptiQL = BTreeOptiQL::new();
    for k in 0..1_000u64 {
        tree.insert(k, k * 2);
    }
    assert_eq!(tree.lookup(721), Some(1442));
    assert_eq!(tree.update(721, 7), Some(1442));
    assert_eq!(tree.scan(990, 5).len(), 5);
    assert_eq!(tree.remove(721), Some(7));
    println!("b+-tree: {} keys after CRUD", tree.len());

    // --- 3. The ART ----------------------------------------------------------
    let art: ArtOptiQL = ArtOptiQL::new();
    for k in [1u64, 1 << 20, 1 << 40, u64::MAX] {
        art.insert(k, !k);
    }
    assert_eq!(art.lookup(1 << 40), Some(!(1u64 << 40)));
    println!("art: {} sparse keys indexed", art.len());

    // --- 4. Concurrency ------------------------------------------------------
    let shared: std::sync::Arc<BTreeOptiQL> = std::sync::Arc::new(BTreeOptiQL::new());
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let t = std::sync::Arc::clone(&shared);
            s.spawn(move || {
                for i in 0..10_000u64 {
                    t.insert(i * 4 + tid, tid);
                }
            });
        }
    });
    assert_eq!(shared.len(), 40_000);
    println!("concurrent inserts: {} keys, tree consistent", shared.len());
}
