//! Sharded facade demo: one trait, many compositions.
//!
//! `ShardedIndex<I>` hash-partitions any `ConcurrentIndex` over
//! cache-line-padded shards, each with its own locks, stats and epoch
//! reclamation domain — and is itself a `ConcurrentIndex`, so generic
//! code runs unmodified over plain trees, sharded trees, or even a
//! sharded model index.
//!
//! Run with: `cargo run --release --example sharded_demo`

use optiql_art::ArtOptiQL;
use optiql_btree::BTreeOptiQL;
use optiql_index_api::ConcurrentIndex;
use optiql_sharded::ShardedIndex;

/// Generic over the trait: fills, probes and scans any index.
fn exercise<I: ConcurrentIndex>(index: &I, label: &str) {
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            s.spawn(move || {
                for i in 0..25_000u64 {
                    index.insert(i * 4 + tid, tid);
                }
            });
        }
    });
    assert_eq!(index.len(), 100_000);
    assert_eq!(index.lookup(42 * 4 + 1), Some(1));
    assert_eq!(index.scan_count(0, 500), 500);
    let stats = index.index_stats();
    println!(
        "{label:<28} {} keys, {} ops, {} restarts",
        index.len(),
        stats.ops,
        stats.restarts
    );
}

fn main() {
    // Plain trees implement the trait directly...
    let tree: BTreeOptiQL = BTreeOptiQL::new();
    exercise(&tree, "B+-tree (plain)");

    // ...and so does the facade, over any shard count. Block granularity
    // is a knob: 256-key blocks suit this demo's 100k-key space (the
    // coarser default targets multi-million-key serving workloads).
    let sharded_tree: ShardedIndex<BTreeOptiQL> = ShardedIndex::with_block_bits(8, 8);
    exercise(&sharded_tree, "B+-tree (8 shards)");

    let sharded_art: ShardedIndex<ArtOptiQL> = ShardedIndex::with_block_bits(4, 8);
    exercise(&sharded_art, "ART (4 shards)");

    // Per-shard introspection: blocks spread dense keys evenly.
    print!("shard fill:");
    sharded_tree.for_each_shard(|i, shard| print!(" [{i}]={}", shard.len()));
    println!();

    // Composition is free: shards can be anything implementing the trait,
    // including the mutex-protected model index used by the tests.
    let model: ShardedIndex<optiql_index_api::model::ModelIndex> = ShardedIndex::new(2);
    exercise(&model, "Mutex<BTreeMap> (2 shards)");
}
