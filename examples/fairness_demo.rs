//! Fairness demonstration (paper §1.1 and D3): with backoff-based
//! centralized locks, "lucky" threads can acquire the lock several times
//! more often than others; OptiQL's FIFO queue hands the lock over evenly.
//!
//! Counts per-thread acquisitions of one highly contended lock and prints
//! the max/min ratio for each lock type (1.0 = perfectly fair).
//!
//! Run with: `cargo run --release --example fairness_demo`

use std::time::Duration;

use optiql::{ExclusiveLock, McsLock, OptLock, OptLockBackoff, OptiQL, TtsBackoff, TtsLock};
use optiql_harness::{run_exclusive, Contention, MicroConfig};

fn fairness<L: ExclusiveLock>(threads: usize) -> (f64, u64) {
    let cfg = MicroConfig {
        threads,
        contention: Contention::Extreme,
        read_pct: 0,
        cs_len: 50,
        duration: Duration::from_millis(600),
    };
    let r = run_exclusive::<L>(&cfg);
    (r.fairness_ratio(), r.ops())
}

fn main() {
    let threads = 8; // oversubscribed on small hosts: worst case for fairness
    println!("single contended lock, {threads} threads, per-thread acquisition balance");
    println!();
    println!("lock              max/min ratio    total acquisitions");
    for (name, (ratio, ops)) in [
        ("TTS", fairness::<TtsLock>(threads)),
        ("TTS+backoff", fairness::<TtsBackoff>(threads)),
        ("OptLock", fairness::<OptLock>(threads)),
        ("OptLock+backoff", fairness::<OptLockBackoff>(threads)),
        ("MCS", fairness::<McsLock>(threads)),
        ("OptiQL", fairness::<OptiQL>(threads)),
    ] {
        println!("{name:<16}  {ratio:>12.2}    {ops:>14}");
    }
    println!();
    println!("Expected shape: queue-based MCS/OptiQL sit near 1.0 (FIFO);");
    println!("backoff variants skew several-fold toward lucky threads —");
    println!("the paper observed ~3x, which is why OptiQL avoids backoff.");
}
