//! Reproduce the paper's Figure 1 story in miniature: a B+-tree under an
//! update-only workload, with a centralized optimistic lock vs OptiQL, at
//! low and high contention. Prints a side-by-side table.
//!
//! Run with: `cargo run --release --example contention_demo`
//! (On a many-core machine, also try OPTIQL_BENCH_THREADS=1,10,20,40,80.)

use optiql_btree::{BTreeOptLock, BTreeOptiQL};
use optiql_harness::{env, preload, run, ConcurrentIndex, KeyDist, Mix, WorkloadConfig};

fn measure<I: ConcurrentIndex>(index: &I, dist: KeyDist, threads: usize, keys: u64) -> f64 {
    let mut cfg = WorkloadConfig::new(threads, Mix::UPDATE_ONLY, dist, keys);
    cfg.duration = env::duration();
    cfg.sample_every = 0;
    let (r, _) = run(index, &cfg);
    r.throughput() / 1e6
}

fn main() {
    let keys = 200_000u64;
    let threads = env::thread_counts();

    let optlock: BTreeOptLock = BTreeOptLock::new();
    let optiql: BTreeOptiQL = BTreeOptiQL::new();
    let cfg = WorkloadConfig::new(1, Mix::UPDATE_ONLY, KeyDist::Uniform, keys);
    preload(&optlock, &cfg);
    preload(&optiql, &cfg);

    println!("B+-tree, update-only, {keys} keys (Mops/s)");
    println!();
    println!("                     (a) low contention      (b) high contention");
    println!("threads              OptLock   OptiQL        OptLock   OptiQL");
    for &t in &threads {
        let low_optlock = measure(&optlock, KeyDist::Uniform, t, keys);
        let low_optiql = measure(&optiql, KeyDist::Uniform, t, keys);
        let high_optlock = measure(&optlock, KeyDist::self_similar_02(), t, keys);
        let high_optiql = measure(&optiql, KeyDist::self_similar_02(), t, keys);
        println!(
            "{t:>7}              {low_optlock:>7.2}   {low_optiql:>6.2}        {high_optlock:>7.2}   {high_optiql:>6.2}"
        );
    }
    println!();
    println!("Expected shape (paper Fig. 1): the two locks match under low");
    println!("contention; under high contention OptLock degrades as threads");
    println!("are added while OptiQL's queue keeps throughput stable.");
}
